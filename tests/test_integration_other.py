"""Integration tests: Fig. 1, Fig. 4, Table 1, Fig. 5, Fig. 8, Fig. 11,
Sec. 4.4, and the Sec. 4.5 summary."""

import pytest

from repro.experiments.adaptation_study import (
    run_dejavu_adaptation,
    run_rightscale_adaptation,
    speedup,
)
from repro.experiments.interference_study import run_interference_study
from repro.experiments.motivation import (
    latency_overshoot_cycles,
    run_motivation_experiment,
)
from repro.experiments.overhead import run_latency_overhead, run_network_overhead
from repro.experiments.signatures import (
    run_fig5_clustering,
    run_separability,
    run_table1_selection,
    table1_overlap,
)
from repro.telemetry.events import TABLE1_EVENTS, event_names


class TestFig1Motivation:
    @pytest.fixture(scope="class")
    def motivation(self):
        return run_motivation_experiment()

    def test_online_tuning_violates_repeatedly(self, motivation):
        # Fig. 1's "bad performance" half-cycles: a large fraction of
        # time above the SLO line despite the recurring pattern.
        assert motivation.slo.violation_fraction > 0.2

    def test_tuning_rerun_on_every_change(self, motivation):
        # The state of the art cannot detect recurrence.
        assert motivation.tuning_invocations >= 4

    def test_multiple_overshoot_episodes(self, motivation):
        cycles = latency_overshoot_cycles(motivation.result, 150.0)
        assert cycles >= 2


class TestFig4Separability:
    @pytest.mark.parametrize("bench_name", ["specweb", "rubis", "cassandra"])
    def test_counter_separates_conditions(self, bench_name):
        result = run_separability(bench_name)
        assert result.min_gap_over_spread >= 0.8

    def test_trials_cluster_tightly(self):
        result = run_separability("specweb")
        for values in result.trial_values.values():
            spread = values.max() - values.min()
            assert spread < 0.2 * values.mean()


class TestTable1:
    @pytest.fixture(scope="class")
    def selection(self):
        return run_table1_selection()

    def test_selected_are_real_events(self, selection):
        assert set(selection.selected) <= set(event_names())

    def test_overlap_with_paper_table(self, selection):
        # The paper's eight; our synthetic telemetry has a lower-rank
        # latent space, so CFS needs fewer events (see EXPERIMENTS.md).
        assert len(table1_overlap(selection)) >= 2

    def test_no_noise_events_selected(self, selection):
        informative_prefixes = tuple(TABLE1_EVENTS) + (
            "flops_retired", "io_reads", "io_writes", "inst_retired",
            "llc_misses", "branch_taken", "dtlb_misses", "bus_trans_mem",
        )
        for name in selection.selected:
            assert name.startswith(informative_prefixes), name

    def test_merit_positive(self, selection):
        assert selection.merit > 0.5


class TestFig5Clustering:
    def test_24_workloads_few_classes(self):
        figure = run_fig5_clustering("hotmail")
        assert figure.n_workloads == 24
        assert 3 <= figure.n_classes <= 4

    def test_messenger_trace_yields_four(self):
        figure = run_fig5_clustering("messenger")
        assert figure.n_classes == 4

    def test_peak_cluster_is_small(self):
        # Fig. 5: "a workload class holding a single workload (the top
        # right corner) stands for the peak hour."
        import numpy as np

        figure = run_fig5_clustering("messenger")
        sizes = np.bincount(figure.model.labels)
        assert sizes.min() <= 2


class TestFig8Adaptation:
    @pytest.fixture(scope="class")
    def studies(self):
        dejavu = run_dejavu_adaptation()
        rs_fast = run_rightscale_adaptation(180.0)
        rs_slow = run_rightscale_adaptation(900.0)
        return dejavu, rs_fast, rs_slow

    def test_dejavu_adapts_in_about_ten_seconds(self, studies):
        dejavu, _, _ = studies
        assert 5.0 <= dejavu.mean_seconds <= 30.0

    def test_rightscale_one_to_two_orders_slower(self, studies):
        dejavu, rs_fast, rs_slow = studies
        assert 10.0 <= speedup(dejavu, rs_fast) <= 1000.0
        assert 10.0 <= speedup(dejavu, rs_slow) <= 1000.0

    def test_longer_calm_time_is_slower(self, studies):
        _, rs_fast, rs_slow = studies
        assert rs_slow.mean_seconds > rs_fast.mean_seconds

    def test_paper_headline_speedup(self, studies):
        # ">10x speedup in adaptation time" (abstract).
        dejavu, rs_fast, _ = studies
        assert speedup(dejavu, rs_fast) > 10.0


class TestFig11Interference:
    @pytest.fixture(scope="class")
    def study(self):
        return run_interference_study()

    def test_detection_maintains_slo(self, study):
        assert study.slo_with.violation_fraction < 0.05

    def test_no_detection_violates_most_of_the_time(self, study):
        # Fig. 11(a): "the service exhibits unacceptable performance
        # most of the time."
        assert study.slo_without.violation_fraction > 0.35

    def test_detection_uses_more_resources(self, study):
        # Fig. 11(b): DejaVu "provisions the service with more resources
        # to compensate for interference."
        assert study.mean_instances_with > study.mean_instances_without


class TestSec44Overhead:
    def test_network_overhead_one_over_n(self):
        result = run_network_overhead(n_instances=100)
        assert result.duplication_fraction == pytest.approx(0.01, rel=0.3)

    def test_network_overhead_is_a_tenth_of_a_percent(self):
        result = run_network_overhead(n_instances=100)
        assert result.total_overhead_fraction == pytest.approx(0.001, rel=0.3)

    def test_latency_overhead_about_3ms(self):
        result = run_latency_overhead()
        assert 2.0 <= result.mean_overhead_ms <= 4.0

    def test_overhead_grows_mildly_with_clients(self):
        result = run_latency_overhead()
        assert result.overheads_ms[-1] > result.overheads_ms[0]
        assert result.overheads_ms[-1] < 2 * result.overheads_ms[0]


class TestSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        from repro.experiments.summary import run_savings_summary

        return run_savings_summary()

    def test_scaleout_band(self, summary):
        low, high = summary.scaleout_band
        assert low >= 0.45
        assert high <= 0.65

    def test_scaleup_band(self, summary):
        low, high = summary.scaleup_band
        assert low >= 0.18
        assert high <= 0.50

    def test_scaleout_beats_scaleup(self, summary):
        assert summary.scaleout_band[0] > summary.scaleup_band[1] - 0.1

    def test_fleet_dollars_order_of_magnitude(self, summary):
        # Paper: >$250k/year for 100 instances; our savings fraction is
        # lower (see EXPERIMENTS.md) but the same order of magnitude.
        assert summary.dollars_per_year_100 > 100_000
        assert summary.dollars_per_year_1000 == pytest.approx(
            10 * summary.dollars_per_year_100
        )
