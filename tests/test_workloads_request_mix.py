"""Unit tests for request mixes and workloads."""

import pytest

from repro.workloads.request_mix import (
    CASSANDRA_UPDATE_HEAVY,
    RUBIS_BIDDING,
    RUBIS_BROWSING,
    SPECWEB_BANKING,
    SPECWEB_ECOMMERCE,
    SPECWEB_SUPPORT,
    RequestMix,
    Workload,
)


class TestPaperMixes:
    def test_cassandra_update_heavy_is_95_percent_writes(self):
        # "95% of write requests and only 5% of read requests" (Sec 4.1).
        assert CASSANDRA_UPDATE_HEAVY.write_fraction == pytest.approx(0.95)

    def test_cassandra_is_cpu_and_memory_intensive(self):
        # Chosen to match RightScale's default alert profile (Sec 4.1).
        assert CASSANDRA_UPDATE_HEAVY.cpu_intensity > 0.7
        assert CASSANDRA_UPDATE_HEAVY.memory_intensity > 0.7

    def test_support_is_io_heavy_read_only(self):
        # "mostly I/O-intensive and read-only" (Sec 4.2).
        assert SPECWEB_SUPPORT.read_fraction == 1.0
        assert SPECWEB_SUPPORT.io_intensity > 0.9

    def test_banking_is_crypto_heavy(self):
        assert SPECWEB_BANKING.flops_intensity > SPECWEB_ECOMMERCE.flops_intensity

    def test_browsing_is_read_only(self):
        assert RUBIS_BROWSING.read_fraction == 1.0

    def test_bidding_has_writes(self):
        assert RUBIS_BIDDING.write_fraction > 0.0


class TestRequestMix:
    def test_with_read_fraction(self):
        varied = CASSANDRA_UPDATE_HEAVY.with_read_fraction(0.5)
        assert varied.read_fraction == 0.5
        assert varied.cpu_intensity == CASSANDRA_UPDATE_HEAVY.cpu_intensity
        assert varied.name != CASSANDRA_UPDATE_HEAVY.name

    def test_activity_vector_length(self):
        assert len(CASSANDRA_UPDATE_HEAVY.activity_vector()) == 5

    def test_bad_read_fraction_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(
                name="bad",
                read_fraction=1.2,
                cpu_intensity=0.5,
                memory_intensity=0.5,
                io_intensity=0.5,
                flops_intensity=0.5,
            )

    def test_bad_intensity_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(
                name="bad",
                read_fraction=0.5,
                cpu_intensity=1.5,
                memory_intensity=0.5,
                io_intensity=0.5,
                flops_intensity=0.5,
            )

    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(
                name="bad",
                read_fraction=0.5,
                cpu_intensity=0.5,
                memory_intensity=0.5,
                io_intensity=0.5,
                flops_intensity=0.5,
                demand_per_client=0.0,
            )


class TestWorkload:
    def test_demand_units(self):
        workload = Workload(volume=100.0, mix=CASSANDRA_UPDATE_HEAVY)
        expected = 100.0 * CASSANDRA_UPDATE_HEAVY.demand_per_client
        assert workload.demand_units == pytest.approx(expected)

    def test_scaled(self):
        workload = Workload(volume=100.0, mix=CASSANDRA_UPDATE_HEAVY)
        assert workload.scaled(2.0).volume == 200.0

    def test_scaled_preserves_mix(self):
        workload = Workload(volume=100.0, mix=RUBIS_BIDDING)
        assert workload.scaled(0.5).mix is RUBIS_BIDDING

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            Workload(volume=-1.0, mix=RUBIS_BIDDING)

    def test_negative_scale_rejected(self):
        workload = Workload(volume=1.0, mix=RUBIS_BIDDING)
        with pytest.raises(ValueError):
            workload.scaled(-1.0)
