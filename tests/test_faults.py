"""The fault-event vocabulary: DSL parsing, schedules, host reactions.

:mod:`repro.sim.faults` is the tentpole's front door — everything the
CLI ``--faults`` flag, the scenario ``faults:`` key and the study's
``faults=`` parameter accept flows through :func:`parse_faults` into a
frozen :class:`FaultSchedule`.  These tests pin the grammar (every bad
token fails loudly, naming itself), the schedule's derived views
(timeline, profiler windows, recovery-gated manager knobs), the seeded
generator's determinism, and the :class:`~repro.sim.hosts.HostMap`
reaction machinery driven directly: failure drops capacity to zero and
evacuates (or degrades) tenants, recovery restores capacity without
fail-back.
"""

import pickle

import pytest

from repro.sim.faults import (
    FaultSchedule,
    HostFaultEvent,
    ProfilerFaultEvent,
    RandomFaultSpec,
    parse_faults,
)


class TestParseFaults:
    def test_none_and_ready_schedules_pass_through(self):
        assert parse_faults(None) is None
        schedule = FaultSchedule(host_faults=(HostFaultEvent(0, 5, 3),))
        assert parse_faults(schedule) is schedule

    def test_host_event_token(self):
        schedule = parse_faults("host:1@40+30")
        assert schedule.host_faults == (HostFaultEvent(1, 40, 30),)
        assert schedule.profiler_faults == ()
        assert schedule.any_host_faults

    def test_profiler_tokens_full_and_partial(self):
        schedule = parse_faults("profiler@30+18,profiler:2@100+6")
        assert schedule.profiler_faults == (
            ProfilerFaultEvent(30, 18, None),
            ProfilerFaultEvent(100, 6, 2),
        )
        assert not schedule.any_host_faults

    def test_random_generator_token(self):
        schedule = parse_faults("random:3@7")
        assert schedule.generators == (RandomFaultSpec(count=3, seed=7),)
        assert schedule.any_host_faults  # generators can touch hosts

    def test_knobs(self):
        schedule = parse_faults(
            "host:0@5+2,recovery=off,blackout=300,blackout_theft=0.6,"
            "residual=0.2,retries=3,backoff=900,fallback=off"
        )
        assert schedule.recovery is False
        assert schedule.blackout_seconds == 300.0
        assert schedule.blackout_theft == 0.6
        assert schedule.residual_rate == 0.2
        assert schedule.retry_limit == 3
        assert schedule.retry_backoff_seconds == 900.0
        assert schedule.degraded_fallback is False

    def test_iterable_of_spec_strings(self):
        # The scenario faults: list path — each item may itself be
        # comma-separated, all merging into one schedule.
        schedule = parse_faults(["host:0@5+2,host:1@9+4", "retries=1"])
        assert len(schedule.host_faults) == 2
        assert schedule.retry_limit == 1

    @pytest.mark.parametrize(
        "spec,needle",
        [
            ("bogus", "bogus"),
            ("host@5+2", "host"),  # missing index
            ("host:x@5+2", "host:x@5+2"),
            ("host:0@5", "5"),  # no +duration
            ("profiler:x@5+2", "profiler:x@5+2"),
            ("disk:0@5+2", "disk"),  # unknown kind
            ("host:0@5+2,wibble=3", "wibble"),
            ("host:0@5+2,retries=soon", "soon"),
            ("random:0@7", "random:0@7"),  # zero-count generator
        ],
    )
    def test_bad_tokens_fail_naming_themselves(self, spec, needle):
        with pytest.raises(ValueError) as excinfo:
            parse_faults(spec)
        assert needle in str(excinfo.value)

    def test_knobs_alone_are_not_a_schedule(self):
        with pytest.raises(ValueError, match="at least one event"):
            parse_faults("recovery=off,retries=2")

    def test_unparseable_value_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_faults(42)


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="negative"):
            HostFaultEvent(-1, 5, 2)
        with pytest.raises(ValueError, match="duration"):
            HostFaultEvent(0, 5, 0)
        with pytest.raises(ValueError, match="duration"):
            ProfilerFaultEvent(5, 0)
        with pytest.raises(ValueError, match="slot"):
            ProfilerFaultEvent(5, 2, slots=0)

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            (dict(blackout_seconds=-1.0), "blackout"),
            (dict(blackout_theft=1.5), "theft"),
            (dict(residual_rate=1.0), "residual"),
            (dict(retry_limit=-1), "retry limit"),
            (dict(retry_backoff_seconds=0.0), "backoff"),
        ],
    )
    def test_knob_validation(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            FaultSchedule(host_faults=(HostFaultEvent(0, 5, 2),), **kwargs)

    def test_recovery_gates_the_manager_knobs(self):
        on = FaultSchedule(
            host_faults=(HostFaultEvent(0, 5, 2),),
            retry_limit=2,
            degraded_fallback=True,
        )
        assert on.manager_retry_limit == 2
        assert on.manager_degraded_fallback is True
        off = FaultSchedule(
            host_faults=(HostFaultEvent(0, 5, 2),),
            retry_limit=2,
            degraded_fallback=True,
            recovery=False,
        )
        # Recovery off means *no* response machinery anywhere: the
        # no-recovery benchmark arm must not quietly keep its retries.
        assert off.manager_retry_limit == 0
        assert off.manager_degraded_fallback is False

    def test_resolve_expands_generators_deterministically(self):
        schedule = FaultSchedule(generators=(RandomFaultSpec(3, seed=7),))
        a = schedule.resolve(n_steps=100, n_hosts=4)
        b = schedule.resolve(n_steps=100, n_hosts=4)
        assert a == b  # same seed, same faults — no wall-clock entropy
        assert len(a.host_faults) == 3
        assert a.generators == ()
        for event in a.host_faults:
            assert 0 <= event.host < 4
            assert 1 <= event.start_step < 100
        # A different seed draws different events.
        other = FaultSchedule(
            generators=(RandomFaultSpec(3, seed=8),)
        ).resolve(100, 4)
        assert other.host_faults != a.host_faults

    def test_resolve_validates_host_indices(self):
        schedule = FaultSchedule(host_faults=(HostFaultEvent(5, 10, 2),))
        with pytest.raises(ValueError, match="host 5"):
            schedule.resolve(n_steps=100, n_hosts=2)

    def test_resolve_is_idempotent_for_concrete_schedules(self):
        schedule = FaultSchedule(
            host_faults=(HostFaultEvent(0, 10, 2),)
        ).resolve(100, 1)
        assert schedule.resolve(100, 1) == schedule

    def test_host_timeline_sorted_fail_before_recover(self):
        schedule = FaultSchedule(
            host_faults=(
                HostFaultEvent(1, 20, 10),
                HostFaultEvent(0, 30, 5),  # starts where host 1 recovers
            )
        )
        assert schedule.host_timeline() == [
            (20, 0, 1),
            (30, 0, 0),  # kind 0 (fail) sorts before kind 1 (recover)
            (30, 1, 1),
            (35, 1, 0),
        ]

    def test_host_timeline_requires_resolution(self):
        schedule = FaultSchedule(generators=(RandomFaultSpec(1, seed=0),))
        with pytest.raises(ValueError, match="resolve"):
            schedule.host_timeline()

    def test_profiler_windows_convert_steps_to_seconds(self):
        schedule = FaultSchedule(
            profiler_faults=(
                ProfilerFaultEvent(40, 5, 2),
                ProfilerFaultEvent(10, 3),
            )
        )
        assert schedule.profiler_windows(60.0) == (
            (600.0, 780.0, None),
            (2400.0, 2700.0, 2),
        )
        with pytest.raises(ValueError, match="step"):
            schedule.profiler_windows(0.0)

    def test_schedule_is_picklable(self):
        # Shard workers receive the schedule through the study spec.
        schedule = parse_faults("host:0@5+2,profiler@9+3,retries=1")
        assert pickle.loads(pickle.dumps(schedule)) == schedule


# ----------------------------------------------------------------------
# HostMap reactions, driven directly (no fleet engine in the loop)
# ----------------------------------------------------------------------


class TestHostMapFaults:
    """Failure/evacuation/recovery semantics on a hand-driven map."""

    def build_map(self, schedule, n_lanes=4, n_hosts=2, capacity=10.0):
        from repro.sim.hosts import HostMap

        host_map = HostMap.spread(
            n_lanes, n_hosts, capacity
        )
        host_map.attach_faults(schedule)
        return host_map

    def step(self, host_map, t, demands):
        import numpy as np

        return host_map._apply_demands(t, np.asarray(demands, dtype=float))

    def test_attach_validates(self):
        from repro.sim.hosts import HostMap

        host_map = HostMap.spread(2, 2, 10.0)
        with pytest.raises(ValueError, match="resolve"):
            host_map.attach_faults(
                FaultSchedule(generators=(RandomFaultSpec(1, seed=0),))
            )
        with pytest.raises(ValueError, match="host 7"):
            host_map.attach_faults(
                FaultSchedule(host_faults=(HostFaultEvent(7, 5, 2),))
            )
        host_map.attach_faults(
            FaultSchedule(host_faults=(HostFaultEvent(0, 5, 2),))
        )
        with pytest.raises(ValueError, match="already attached"):
            host_map.attach_faults(
                FaultSchedule(host_faults=(HostFaultEvent(0, 5, 2),))
            )

    def test_failure_evacuates_and_recovery_restores(self):
        # Lanes 0, 2 on host 0; lanes 1, 3 on host 1 (spread).  Host 0
        # dies at step 2: both tenants fit on host 1 (demand 2 each
        # against 10 - 4 = 6 headroom), each paying the blackout.
        schedule = FaultSchedule(
            host_faults=(HostFaultEvent(0, 2, 3),),
            blackout_seconds=600.0,
            blackout_theft=0.5,
        )
        host_map = self.build_map(schedule)
        demands = [2.0, 2.0, 2.0, 2.0]
        self.step(host_map, 0.0, demands)
        self.step(host_map, 300.0, demands)
        assert host_map.host_failures == 0
        thefts = self.step(host_map, 600.0, demands)  # step index 2: fail
        assert host_map.host_failures == 1
        assert host_map.evacuations == 2
        assert host_map.unplaced_evacuations == 0
        assert host_map.placement == (1, 1, 1, 1)
        # Evacuees pay the cloning blackout through their feeds.
        assert thefts[0] == 0.5 and thefts[2] == 0.5
        # Once the blackout expires the survivors settle: 8 units on a
        # 10-unit host is not overloaded, so theft returns to zero.
        thefts = self.step(host_map, 1500.0, demands)
        assert float(thefts.max()) == 0.0
        self.step(host_map, 1800.0, demands)  # step index 4: still down
        assert host_map.host_recoveries == 0
        self.step(host_map, 2100.0, demands)  # step index 5: recover
        assert host_map.host_recoveries == 1
        # No fail-back: evacuees stay where they landed.
        assert host_map.placement == (1, 1, 1, 1)

    def test_unplaceable_tenants_run_degraded_until_recovery(self):
        # One fat tenant per host: nothing fits anywhere else, so the
        # dead host's tenant degrades to the residual rate instead of
        # overcommitting the survivor.
        schedule = FaultSchedule(
            host_faults=(HostFaultEvent(0, 1, 2),), residual_rate=0.2
        )
        host_map = self.build_map(schedule, n_lanes=2, n_hosts=2)
        demands = [8.0, 8.0]
        self.step(host_map, 0.0, demands)
        thefts = self.step(host_map, 300.0, demands)  # fail
        assert host_map.unplaced_evacuations == 1
        assert host_map.evacuations == 0
        assert host_map.placement == (0, 1)  # nobody moved
        assert thefts[0] == pytest.approx(0.8)  # 1 - residual_rate
        self.step(host_map, 900.0, demands)  # step index 2: still down
        thefts = self.step(host_map, 1200.0, demands)  # step index 3: recover
        assert host_map.host_recoveries == 1
        assert thefts[0] == 0.0

    def test_recovery_off_degrades_every_tenant_in_place(self):
        schedule = FaultSchedule(
            host_faults=(HostFaultEvent(0, 1, 2),),
            recovery=False,
            residual_rate=0.1,
        )
        host_map = self.build_map(schedule)
        demands = [1.0, 1.0, 1.0, 1.0]
        self.step(host_map, 0.0, demands)
        thefts = self.step(host_map, 300.0, demands)
        # No evacuation machinery: both tenants ride the dead host.
        assert host_map.evacuations == 0
        assert host_map.placement == (0, 1, 0, 1)
        assert thefts[0] == pytest.approx(0.9) and thefts[2] == pytest.approx(0.9)
        assert thefts[1] == 0.0 and thefts[3] == 0.0
        # The event window still closes — recovery=off changes the
        # response, not the timeline — and capacity comes back.
        self.step(host_map, 900.0, demands)  # step index 2: still down
        thefts = self.step(host_map, 1200.0, demands)  # step index 3: recover
        assert float(thefts.max()) == 0.0

    def test_overlapping_windows_fail_once_recover_once(self):
        schedule = FaultSchedule(
            host_faults=(
                HostFaultEvent(0, 1, 4),
                HostFaultEvent(0, 2, 1),  # nested inside the first
            )
        )
        host_map = self.build_map(schedule)
        demands = [1.0, 1.0, 1.0, 1.0]
        for k in range(7):
            self.step(host_map, 300.0 * k, demands)
        # The nested event neither double-kills nor resurrects early.
        assert host_map.host_failures == 1
        assert host_map.host_recoveries == 1
        assert host_map.fault_commit_steps == [1, 5]
