"""Tests for the terminal figure rendering."""

import numpy as np
import pytest

from repro.analysis.figures import (
    hourly_series,
    print_figure,
    render_comparison,
    sparkline,
)
from repro.sim.result import SimulationResult


def result_with_series(name: str, samples, label="run") -> SimulationResult:
    result = SimulationResult(label=label)
    for t, value in samples:
        result.record(name, t, value)
    return result


class TestHourlySeries:
    def test_per_hour_means(self):
        samples = [(0.0, 2.0), (1800.0, 4.0), (3600.0, 10.0)]
        result = result_with_series("x", samples)
        hourly = hourly_series(result, "x", hours=2)
        assert hourly[0] == pytest.approx(3.0)
        assert hourly[1] == pytest.approx(10.0)

    def test_empty_hours_are_nan(self):
        result = result_with_series("x", [(0.0, 1.0)])
        hourly = hourly_series(result, "x", hours=3)
        assert np.isnan(hourly[1])
        assert np.isnan(hourly[2])

    def test_missing_series_rejected(self):
        with pytest.raises(KeyError):
            hourly_series(SimulationResult("r"), "nope")


class TestSparkline:
    def test_width_respected(self):
        line = sparkline(np.arange(1000.0), width=40)
        assert len(line) == 40

    def test_short_series_kept(self):
        assert len(sparkline(np.arange(5.0), width=40)) == 5

    def test_monotone_series_renders_monotone(self):
        from repro.analysis.figures import _BLOCKS

        line = sparkline(np.arange(10.0))
        densities = [_BLOCKS.index(c) for c in line]
        assert densities == sorted(densities)

    def test_explicit_bounds_shared_scale(self):
        low_line = sparkline(np.full(4, 2.0), low=0.0, high=10.0)
        high_line = sparkline(np.full(4, 10.0), low=0.0, high=10.0)
        assert low_line != high_line

    def test_constant_series(self):
        line = sparkline(np.ones(10))
        assert len(set(line)) == 1

    def test_nan_marked(self):
        line = sparkline(np.array([1.0, float("nan"), 2.0]))
        assert "?" in line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))


class TestRenderComparison:
    def test_shared_scale(self):
        # A policy pinned at the global max must render at full density
        # even if another series has a higher local max.
        low = result_with_series("instances", [(h * 3600.0, 2.0) for h in range(4)])
        high = result_with_series("instances", [(h * 3600.0, 10.0) for h in range(4)])
        rows = render_comparison(
            {"low": low, "high": high}, "instances", hours=4, width=4
        )
        assert rows[0].split("| ")[1] != rows[1].split("| ")[1]

    def test_labels_present(self):
        result = result_with_series("x", [(0.0, 1.0)])
        rows = render_comparison({"dejavu": result}, "x", hours=1)
        assert rows[0].startswith("dejavu")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_comparison({}, "x")


class TestPrintFigure:
    def test_prints_title_and_rows(self, capsys):
        print_figure("My Figure", ["row one", "row two"])
        out = capsys.readouterr().out
        assert "My Figure" in out
        assert "row one" in out
        assert "row two" in out
