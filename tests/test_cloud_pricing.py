"""Unit tests for cost accounting."""

import pytest

from repro.cloud.instance_types import LARGE
from repro.cloud.pricing import (
    HOURS_PER_YEAR,
    CostMeter,
    savings_fraction,
    yearly_fleet_savings,
)
from repro.cloud.provider import Allocation


class TestCostMeter:
    def test_charge_accumulates_dollars(self):
        meter = CostMeter()
        meter.charge(Allocation(count=2, itype=LARGE), seconds=3600.0)
        assert meter.total_dollars == pytest.approx(0.68)

    def test_charge_tracks_instance_seconds(self):
        meter = CostMeter()
        meter.charge(Allocation(count=3, itype=LARGE), seconds=100.0)
        assert meter.instance_seconds["m1.large"] == pytest.approx(300.0)

    def test_instance_hours(self):
        meter = CostMeter()
        meter.charge(Allocation(count=1, itype=LARGE), seconds=7200.0)
        assert meter.instance_hours("m1.large") == pytest.approx(2.0)

    def test_unknown_type_has_zero_hours(self):
        assert CostMeter().instance_hours("m1.xlarge") == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge(Allocation(count=1, itype=LARGE), seconds=-1.0)


class TestSavingsFraction:
    def test_half_cost_is_half_saving(self):
        assert savings_fraction(50.0, 100.0) == pytest.approx(0.5)

    def test_equal_cost_is_zero_saving(self):
        assert savings_fraction(100.0, 100.0) == 0.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            savings_fraction(1.0, 0.0)


class TestYearlyFleetSavings:
    def test_paper_projection_shape(self):
        # The paper projects savings for 100 and 1,000 large instances;
        # the 1,000-instance figure must be exactly 10x the 100-instance
        # one under the same saving fraction.
        small = yearly_fleet_savings(0.55, 100)
        large = yearly_fleet_savings(0.55, 1000)
        assert large == pytest.approx(10 * small)

    def test_exact_arithmetic(self):
        expected = 0.5 * 10 * 0.34 * HOURS_PER_YEAR
        assert yearly_fleet_savings(0.5, 10) == pytest.approx(expected)

    def test_paper_order_of_magnitude(self):
        # At the paper's 55-60% scale-out savings, 100 instances save
        # hundreds of thousands of dollars per year.
        assert yearly_fleet_savings(0.55, 100) > 150_000

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            yearly_fleet_savings(1.5, 100)

    def test_negative_fleet_rejected(self):
        with pytest.raises(ValueError):
            yearly_fleet_savings(0.5, -1)
