"""Unit tests for the analysis layer."""

import pytest

from repro.analysis.adaptation import adaptation_times, mean_adaptation_seconds
from repro.analysis.costs import cost_summary, dollars_from_series
from repro.analysis.slo_report import slo_report
from repro.services.slo import LatencySLO, QoSSLO
from repro.sim.result import SimulationResult


def result_with(name, samples, label="run"):
    result = SimulationResult(label=label)
    for t, value in samples:
        result.record(name, t, value)
    return result


class TestCostSummary:
    def test_dollars_from_series(self):
        # 2 $/h for one hour = 2 dollars.
        result = result_with("hourly_cost", [(0.0, 2.0), (3600.0, 0.0)])
        assert dollars_from_series(result) == pytest.approx(2.0)

    def test_savings_versus_baseline(self):
        policy = result_with("hourly_cost", [(0.0, 1.0), (7200.0, 1.0)])
        baseline = result_with("hourly_cost", [(0.0, 4.0), (7200.0, 4.0)])
        summary = cost_summary(policy, baseline)
        assert summary.saving_fraction == pytest.approx(0.75)

    def test_windowed_comparison(self):
        policy = result_with(
            "hourly_cost", [(0.0, 10.0), (3600.0, 1.0), (7200.0, 1.0)]
        )
        baseline = result_with(
            "hourly_cost", [(0.0, 10.0), (3600.0, 2.0), (7200.0, 2.0)]
        )
        summary = cost_summary(policy, baseline, window=(3600.0, 7201.0))
        assert summary.saving_fraction == pytest.approx(0.5)

    def test_fleet_projection(self):
        policy = result_with("hourly_cost", [(0.0, 5.0), (3600.0, 5.0)])
        baseline = result_with("hourly_cost", [(0.0, 10.0), (3600.0, 10.0)])
        summary = cost_summary(policy, baseline)
        assert summary.fleet_savings_per_year(100) > 0

    def test_missing_series_rejected(self):
        with pytest.raises(KeyError):
            cost_summary(SimulationResult("a"), SimulationResult("b"))


class TestSLOReport:
    def test_latency_violations(self):
        result = result_with(
            "latency_ms", [(0.0, 50.0), (1.0, 70.0), (2.0, 50.0), (3.0, 80.0)]
        )
        report = slo_report(result, LatencySLO(60.0))
        assert report.violation_fraction == pytest.approx(0.5)
        assert report.worst_value == 80.0

    def test_qos_violations(self):
        result = result_with("qos_percent", [(0.0, 99.0), (1.0, 90.0)])
        report = slo_report(result, QoSSLO(95.0))
        assert report.violation_fraction == pytest.approx(0.5)
        assert report.worst_value == 90.0

    def test_compliance_fraction(self):
        result = result_with("latency_ms", [(0.0, 50.0), (1.0, 70.0)])
        report = slo_report(result, LatencySLO(60.0))
        assert report.compliance_fraction == pytest.approx(0.5)

    def test_windowed_report(self):
        result = result_with("latency_ms", [(0.0, 500.0), (10.0, 50.0)])
        report = slo_report(result, LatencySLO(60.0), window=(10.0, 20.0))
        assert report.violation_fraction == 0.0

    def test_empty_window_rejected(self):
        result = result_with("latency_ms", [(0.0, 50.0)])
        with pytest.raises(ValueError):
            slo_report(result, LatencySLO(60.0), window=(100.0, 200.0))

    def test_missing_series_rejected(self):
        with pytest.raises(KeyError):
            slo_report(SimulationResult("x"), LatencySLO(60.0))


class TestAdaptationTimes:
    def test_recovery_measured(self):
        result = result_with(
            "latency_ms",
            [(0.0, 50.0), (10.0, 100.0), (20.0, 100.0), (30.0, 55.0)],
        )
        times = adaptation_times(result, LatencySLO(60.0), change_times=[10.0])
        assert times == [20.0]

    def test_no_violation_counts_as_instant(self):
        # "When a single resize operation is sufficient ... we record an
        # instantaneous adaptation time (zero seconds)."
        result = result_with("latency_ms", [(0.0, 50.0), (10.0, 55.0)])
        times = adaptation_times(result, LatencySLO(60.0), change_times=[10.0])
        assert times == [0.0]

    def test_never_recovered_charges_rest_of_run(self):
        result = result_with(
            "latency_ms", [(0.0, 100.0), (10.0, 100.0), (20.0, 100.0)]
        )
        times = adaptation_times(result, LatencySLO(60.0), change_times=[0.0])
        assert times == [20.0]

    def test_mean_over_changes(self):
        result = result_with(
            "latency_ms",
            [
                (0.0, 100.0),
                (10.0, 50.0),
                (20.0, 100.0),
                (40.0, 50.0),
            ],
        )
        mean = mean_adaptation_seconds(
            result, LatencySLO(60.0), change_times=[0.0, 20.0]
        )
        assert mean == pytest.approx(15.0)

    def test_changes_outside_run_rejected(self):
        result = result_with("latency_ms", [(0.0, 50.0)])
        with pytest.raises(ValueError):
            mean_adaptation_seconds(result, LatencySLO(60.0), change_times=[100.0])

    def test_missing_series_rejected(self):
        with pytest.raises(KeyError):
            adaptation_times(SimulationResult("x"), LatencySLO(60.0), [0.0])
