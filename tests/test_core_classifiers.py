"""Unit tests for the runtime classifiers."""

import numpy as np
import pytest

from repro.core.classifiers import (
    C45DecisionTree,
    GaussianNaiveBayes,
    NearestCentroid,
    Prediction,
)
from repro.core.classifiers.decision_tree import entropy


def three_class_data(seed=0, n=30, spread=0.3):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
    X = np.vstack([rng.normal(c, spread, size=(n, 2)) for c in centers])
    y = np.repeat([0, 1, 2], n)
    return X, y


ALL_CLASSIFIERS = [C45DecisionTree, GaussianNaiveBayes, NearestCentroid]


class TestPrediction:
    def test_confidence_range_enforced(self):
        with pytest.raises(ValueError):
            Prediction(label=0, confidence=1.5)


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([10.0, 0.0])) == 0.0

    def test_uniform_is_one_bit(self):
        assert entropy(np.array([5.0, 5.0])) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert entropy(np.array([0.0, 0.0])) == 0.0


@pytest.mark.parametrize("classifier_cls", ALL_CLASSIFIERS)
class TestAllClassifiers:
    def test_classifies_training_points(self, classifier_cls):
        X, y = three_class_data()
        model = classifier_cls().fit(X, y)
        correct = sum(model.predict(x).label == label for x, label in zip(X, y))
        assert correct / len(y) > 0.95

    def test_generalizes_to_nearby_points(self, classifier_cls):
        X, y = three_class_data()
        model = classifier_cls().fit(X, y)
        assert model.predict(np.array([5.2, 0.1])).label == 1

    def test_confidence_in_unit_interval(self, classifier_cls):
        X, y = three_class_data()
        model = classifier_cls().fit(X, y)
        prediction = model.predict(X[0])
        assert 0.0 <= prediction.confidence <= 1.0

    def test_confident_on_clean_data(self, classifier_cls):
        X, y = three_class_data(spread=0.1)
        model = classifier_cls().fit(X, y)
        assert model.predict(X[0]).confidence > 0.6

    def test_predict_before_fit_rejected(self, classifier_cls):
        with pytest.raises(RuntimeError):
            classifier_cls().predict(np.zeros(2))

    def test_empty_training_set_rejected(self, classifier_cls):
        with pytest.raises(ValueError):
            classifier_cls().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_shape_mismatch_rejected(self, classifier_cls):
        with pytest.raises(ValueError):
            classifier_cls().fit(np.zeros((5, 2)), np.zeros(4, dtype=int))


class TestC45Specifics:
    def test_depth_and_leaves(self):
        X, y = three_class_data()
        tree = C45DecisionTree().fit(X, y)
        assert tree.depth() >= 1
        assert tree.n_leaves() >= 3

    def test_min_samples_leaf_respected(self):
        X, y = three_class_data(n=4)
        tree = C45DecisionTree(min_samples_leaf=4).fit(X, y)
        # With 4-sample leaves required, 12 points allow few splits.
        assert tree.n_leaves() <= 3

    def test_max_depth_zero_tree_predicts_majority(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 1])
        tree = C45DecisionTree(max_depth=1, min_samples_leaf=1).fit(X, y)
        assert tree.predict(np.array([0.5])).label in (0, 1)

    def test_lower_confidence_on_small_leaves(self):
        # Laplace smoothing: a 3-sample pure leaf (trials=3 per
        # workload) gives (3+1)/(3+4) = 0.571 for 4 classes — the exact
        # effect that drove trials_per_workload to 5.
        X = np.repeat(np.arange(4.0)[:, None], 3, axis=0)
        y = np.repeat([0, 1, 2, 3], 3)
        tree = C45DecisionTree().fit(X, y)
        assert tree.predict(np.array([0.0])).confidence == pytest.approx(4 / 7)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            C45DecisionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            C45DecisionTree(max_depth=0)


class TestNaiveBayesSpecifics:
    def test_variance_floor_handles_duplicate_points(self):
        X = np.array([[1.0, 2.0]] * 5 + [[3.0, 4.0]] * 5)
        y = np.repeat([0, 1], 5)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict(np.array([1.0, 2.0])).label == 0

    def test_bad_floor_rejected(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_floor_fraction=0.0)


class TestNearestCentroidSpecifics:
    def test_confidence_decays_with_distance(self):
        X, y = three_class_data(spread=0.1)
        model = NearestCentroid().fit(X, y)
        near = model.predict(np.array([0.0, 0.0])).confidence
        far = model.predict(np.array([2.4, 0.0])).confidence
        assert near > far

    def test_bad_temperature_rejected(self):
        with pytest.raises(ValueError):
            NearestCentroid(temperature=0.0)
