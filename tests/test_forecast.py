"""Property suite for the seasonal placement forecasts.

Three properties are on the hook (ISSUE 10):

* forecasts are **deterministic** given the trace seed — a pure
  function of the trace, so scalar/batched/sharded paths resolve the
  identical placement estimates;
* the predicted peak **covers** a pinned fraction of the realized
  weekly peak across seeds — including the HotMail day-3 surge the
  model deliberately does not forecast;
* packing by forecasts never yields **more** realized-peak overcommit
  than packing by the learning-day observed peak on the same fleet.
"""

import numpy as np
import pytest

from repro.experiments.setup import DEFAULT_PEAK_DEMAND, make_trace
from repro.sim.forecast import (
    DEFAULT_FORECAST_MARGIN,
    PLACEMENT_DEMANDS,
    fit_lane_forecast,
    forecast_peak_demand,
    placement_estimate,
)
from repro.sim.placement import make_hosts, make_policy, total_overcommit
from repro.workloads.traces import (
    HOTMAIL_LEVELS,
    HOTMAIL_SURGE_LOAD,
    MESSENGER_LEVELS,
)
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY

MIX = CASSANDRA_UPDATE_HEAVY

#: Minimum forecast/realized-weekly-peak ratio pinned across seeds.
#: HotMail's realized peak is the unforecast day-3 surge (1.05); the
#: forecast tops out near 0.85, so ~0.8 coverage is the honest floor.
PINNED_COVERAGE = 0.75

SEEDS = range(8)


def trace(name, seed=None, peak_demand=DEFAULT_PEAK_DEMAND):
    return make_trace(name, MIX, peak_demand, seed=seed)


def realized_weekly_peak(tr):
    return float(tr.hourly_load.max()) * tr.peak_clients * tr.mix.demand_per_client


class TestDeterminism:
    @pytest.mark.parametrize("name", ["messenger", "hotmail"])
    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_same_seed_same_forecast(self, name, seed):
        first = fit_lane_forecast(trace(name, seed=seed))
        again = fit_lane_forecast(trace(name, seed=seed))
        assert first == again
        assert forecast_peak_demand(trace(name, seed=seed)) == (
            first.peak_demand_units
        )

    def test_different_seeds_rejitter_the_fit(self):
        peaks = {
            fit_lane_forecast(trace("hotmail", seed=seed)).peak_load
            for seed in SEEDS
        }
        assert len(peaks) > 1


class TestLevelRecovery:
    def test_messenger_recovers_four_levels(self):
        forecast = fit_lane_forecast(trace("messenger"))
        assert len(forecast.levels) == len(MESSENGER_LEVELS)
        np.testing.assert_allclose(
            forecast.levels, MESSENGER_LEVELS, atol=0.06
        )

    def test_hotmail_recovers_three_levels(self):
        forecast = fit_lane_forecast(trace("hotmail"))
        assert len(forecast.levels) == len(HOTMAIL_LEVELS)
        np.testing.assert_allclose(forecast.levels, HOTMAIL_LEVELS, atol=0.06)

    def test_peak_window_width_is_plateau_hours(self):
        # Messenger's canonical weekday peak is the single 19:00 hour.
        forecast = fit_lane_forecast(trace("messenger"))
        assert forecast.peak_hours == 1

    def test_margin_inflates_and_ceiling_clips(self):
        tr = trace("hotmail")
        flat = fit_lane_forecast(tr, margin=0.0)
        inflated = fit_lane_forecast(tr, margin=0.06)
        assert inflated.peak_load == pytest.approx(flat.peak_load * 1.06)
        clipped = fit_lane_forecast(tr, margin=10.0)
        assert clipped.peak_load == 1.0


class TestPeakCoverage:
    @pytest.mark.parametrize("name", ["messenger", "hotmail"])
    def test_forecast_covers_pinned_fraction_across_seeds(self, name):
        for seed in SEEDS:
            tr = trace(name, seed=seed)
            coverage = forecast_peak_demand(tr) / realized_weekly_peak(tr)
            assert coverage >= PINNED_COVERAGE

    def test_messenger_ceiling_makes_full_coverage(self):
        # The messenger top plateau sits at the load ceiling, so the
        # inflated forecast clips to exactly the realized peak.
        for seed in SEEDS:
            tr = trace("messenger", seed=seed)
            assert forecast_peak_demand(tr) / realized_weekly_peak(tr) >= 0.95

    def test_surge_is_deliberately_unforecast(self):
        # The day-3 HotMail anomaly exceeds every learned plateau; the
        # forecast must not have swallowed it into a level.
        forecast = fit_lane_forecast(trace("hotmail"))
        assert forecast.peak_load < HOTMAIL_SURGE_LOAD
        assert max(forecast.levels) < 1.0


class TestForecastPacking:
    FACTORS = (0.7, 0.85, 1.0, 1.1, 1.2)

    def fleet(self, base_seed):
        traces = []
        for lane in range(12):
            name = "messenger" if lane % 2 == 0 else "hotmail"
            factor = self.FACTORS[lane % len(self.FACTORS)]
            traces.append(
                trace(
                    name,
                    seed=base_seed * 100 + lane,
                    peak_demand=DEFAULT_PEAK_DEMAND * factor,
                )
            )
        return traces

    @pytest.mark.parametrize("base_seed", [0, 1, 2])
    def test_forecast_packing_never_worse_on_realized_peaks(self, base_seed):
        traces = self.fleet(base_seed)
        hosts = make_hosts(4, 16.0)
        realized = [realized_weekly_peak(tr) for tr in traces]
        overcommit = {}
        for mode in PLACEMENT_DEMANDS:
            estimates = [placement_estimate(tr, mode) for tr in traces]
            placement = make_policy("first_fit_decreasing").place(
                estimates, hosts
            )
            overcommit[mode] = total_overcommit(placement, realized, hosts)
        assert overcommit["forecast"] <= overcommit["learning-peak"] + 1e-9


class TestValidation:
    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            fit_lane_forecast(trace("messenger"), margin=-0.1)

    def test_nonpositive_level_gap_rejected(self):
        with pytest.raises(ValueError, match="gap"):
            fit_lane_forecast(trace("messenger"), level_gap=0.0)

    def test_unknown_placement_demand_rejected(self):
        with pytest.raises(ValueError, match="placement demand"):
            placement_estimate(trace("messenger"), "crystal-ball")

    def test_learning_peak_estimate_is_day0_max(self):
        tr = trace("hotmail", seed=2)
        expected = max(w.demand_units for w in tr.hourly_workloads(day=0))
        assert placement_estimate(tr, "learning-peak") == expected

    def test_default_margin_is_two_jitter_sd(self):
        assert DEFAULT_FORECAST_MARGIN == pytest.approx(0.06)
