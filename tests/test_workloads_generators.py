"""Unit tests for the parametric load generators."""

import pytest

from repro.workloads.generators import (
    constant_load,
    sine_wave_load,
    spike_load,
    step_load,
)
from repro.workloads.request_mix import RUBIS_BIDDING

MIX = RUBIS_BIDDING


class TestSineWave:
    def test_starts_at_midpoint(self):
        load = sine_wave_load(MIX, 100.0, 500.0, period_seconds=4800.0)
        assert load(0.0).volume == pytest.approx(300.0)

    def test_holds_for_ten_minutes(self):
        # "we change the workload volume every 10 minutes" (Sec. 2.2).
        load = sine_wave_load(MIX, 100.0, 500.0, period_seconds=4800.0)
        assert load(0.0).volume == load(599.0).volume
        assert load(0.0).volume != load(600.0).volume

    def test_stays_in_range(self):
        load = sine_wave_load(MIX, 100.0, 500.0, period_seconds=4800.0)
        volumes = [load(t * 60.0).volume for t in range(200)]
        assert min(volumes) >= 100.0 - 1e-9
        assert max(volumes) <= 500.0 + 1e-9

    def test_reaches_peak(self):
        load = sine_wave_load(
            MIX, 100.0, 500.0, period_seconds=4800.0, hold_seconds=1.0
        )
        assert load(1200.0).volume == pytest.approx(500.0)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            sine_wave_load(MIX, 500.0, 100.0, 4800.0)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            sine_wave_load(MIX, 100.0, 500.0, 0.0)


class TestStep:
    def test_before_and_after(self):
        load = step_load(MIX, 100.0, 400.0, step_at_seconds=1000.0)
        assert load(999.0).volume == 100.0
        assert load(1000.0).volume == 400.0

    def test_negative_clients_rejected(self):
        with pytest.raises(ValueError):
            step_load(MIX, -1.0, 400.0, 1000.0)


class TestSpike:
    def test_spike_window(self):
        load = spike_load(MIX, 100.0, 900.0, spike_start=50.0, spike_duration=10.0)
        assert load(49.0).volume == 100.0
        assert load(50.0).volume == 900.0
        assert load(59.0).volume == 900.0
        assert load(60.0).volume == 100.0

    def test_spike_below_base_rejected(self):
        with pytest.raises(ValueError):
            spike_load(MIX, 100.0, 50.0, 0.0, 10.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            spike_load(MIX, 100.0, 200.0, 0.0, 0.0)


class TestConstant:
    def test_constant_everywhere(self):
        load = constant_load(MIX, 123.0)
        assert load(0.0).volume == 123.0
        assert load(1e6).volume == 123.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            constant_load(MIX, -1.0)
