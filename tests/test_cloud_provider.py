"""Unit tests for the cloud provider."""

import pytest

from repro.cloud.instance_types import EXTRA_LARGE, LARGE
from repro.cloud.provider import Allocation, CloudProvider


class TestAllocation:
    def test_capacity_units(self):
        assert Allocation(count=4, itype=LARGE).capacity_units == 4.0

    def test_capacity_units_xlarge(self):
        alloc = Allocation(count=2, itype=EXTRA_LARGE)
        assert alloc.capacity_units == pytest.approx(3.8)

    def test_hourly_cost(self):
        assert Allocation(count=3, itype=LARGE).hourly_cost == pytest.approx(1.02)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Allocation(count=-1)

    def test_ordering_by_capacity(self):
        assert Allocation(count=1, itype=LARGE) < Allocation(count=2, itype=LARGE)

    def test_str(self):
        assert str(Allocation(count=5, itype=LARGE)) == "5xm1.large"


class TestApply:
    def test_initial_allocation_is_empty(self):
        provider = CloudProvider(max_instances=10)
        assert provider.current_allocation == Allocation(count=0)

    def test_apply_starts_vms(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=3, itype=LARGE), now=0.0)
        assert provider.current_allocation.count == 3

    def test_warmup_delays_serving(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=3, itype=LARGE), now=0.0)
        assert provider.serving_capacity(0.0) == 0.0
        assert provider.serving_capacity(30.0) == pytest.approx(3.0)

    def test_scale_down_is_immediate(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=5, itype=LARGE), now=0.0)
        provider.tick(100.0)
        provider.apply(Allocation(count=2, itype=LARGE), now=100.0)
        assert provider.serving_capacity(100.0) == pytest.approx(2.0)

    def test_scale_up_keeps_existing_serving(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=2, itype=LARGE), now=0.0)
        provider.tick(100.0)
        provider.apply(Allocation(count=5, itype=LARGE), now=100.0)
        # Old 2 still serve while 3 more warm up.
        assert provider.serving_capacity(100.0) == pytest.approx(2.0)
        assert provider.serving_capacity(200.0) == pytest.approx(5.0)

    def test_type_switch_stops_old_pool(self):
        provider = CloudProvider(max_instances=5)
        provider.apply(Allocation(count=5, itype=LARGE), now=0.0)
        provider.tick(100.0)
        provider.apply(Allocation(count=5, itype=EXTRA_LARGE), now=100.0)
        provider.tick(200.0)
        assert provider.serving_capacity(200.0) == pytest.approx(5 * 1.9)

    def test_over_pool_rejected(self):
        provider = CloudProvider(max_instances=4)
        with pytest.raises(ValueError):
            provider.apply(Allocation(count=5, itype=LARGE), now=0.0)

    def test_unknown_type_rejected(self):
        provider = CloudProvider(max_instances=4, instance_types=(LARGE,))
        with pytest.raises(ValueError):
            provider.apply(Allocation(count=1, itype=EXTRA_LARGE), now=0.0)

    def test_last_change_tracked(self):
        provider = CloudProvider(max_instances=4)
        assert provider.last_change_at is None
        provider.apply(Allocation(count=1, itype=LARGE), now=42.0)
        assert provider.last_change_at == 42.0

    def test_noop_apply_does_not_update_change_time(self):
        provider = CloudProvider(max_instances=4)
        provider.apply(Allocation(count=1, itype=LARGE), now=10.0)
        provider.apply(Allocation(count=1, itype=LARGE), now=20.0)
        assert provider.last_change_at == 10.0


class TestBilling:
    def test_billing_accumulates(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=2, itype=LARGE), now=0.0)
        provider.tick(3600.0)
        assert provider.meter.total_dollars == pytest.approx(2 * 0.34)

    def test_billing_follows_allocation_changes(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=2, itype=LARGE), now=0.0)
        provider.apply(Allocation(count=4, itype=LARGE), now=1800.0)
        provider.tick(3600.0)
        expected = 2 * 0.34 * 0.5 + 4 * 0.34 * 0.5
        assert provider.meter.total_dollars == pytest.approx(expected)

    def test_time_reversal_rejected(self):
        provider = CloudProvider(max_instances=10)
        provider.tick(100.0)
        with pytest.raises(ValueError):
            provider.tick(50.0)

    def test_empty_allocation_costs_nothing(self):
        provider = CloudProvider(max_instances=10)
        provider.tick(3600.0)
        assert provider.meter.total_dollars == 0.0


class TestProjectedCapacity:
    def test_projection_does_not_mutate(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=3, itype=LARGE), now=0.0)
        assert provider.projected_capacity(at_time=100.0) == pytest.approx(3.0)
        # Billing was not advanced by the projection.
        assert provider.meter.total_dollars == 0.0

    def test_projection_respects_warmup(self):
        provider = CloudProvider(max_instances=10)
        provider.apply(Allocation(count=3, itype=LARGE), now=0.0)
        assert provider.projected_capacity(at_time=0.0) == 0.0

    def test_full_capacity_helper(self):
        provider = CloudProvider(max_instances=7)
        assert provider.full_capacity() == Allocation(count=7, itype=LARGE)
