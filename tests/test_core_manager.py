"""Unit tests for the DejaVu manager."""

import numpy as np
import pytest

from repro.core.manager import DejaVuConfig, DejaVuManager
from repro.experiments.setup import build_scaleout_setup
from repro.sim.engine import StepContext
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload


@pytest.fixture(scope="module")
def trained_setup():
    setup = build_scaleout_setup("messenger")
    setup.manager.learn(setup.trace.hourly_workloads(day=0))
    return setup


def ctx_at(t: float, workload: Workload) -> StepContext:
    return StepContext(t=t, workload=workload, hour=int(t // 3600), day=int(t // 86400))


class TestLearning:
    def test_learning_produces_classes(self, trained_setup):
        report = trained_setup.manager.learning_report
        assert report.n_classes == 4

    def test_one_tuning_per_class_per_band(self, trained_setup):
        report = trained_setup.manager.learning_report
        assert report.tuning_invocations == report.n_classes

    def test_tuning_is_far_cheaper_than_per_workload(self, trained_setup):
        # The clustering headline: 24 workloads -> 4 tuning runs.
        report = trained_setup.manager.learning_report
        assert report.tuning_invocations <= report.n_workloads / 3

    def test_signature_metrics_selected(self, trained_setup):
        report = trained_setup.manager.learning_report
        assert 1 <= len(report.selected_metrics) <= 12

    def test_repository_populated(self, trained_setup):
        manager = trained_setup.manager
        for cluster in range(manager.clustering.n_classes):
            assert manager.repository.contains(cluster, 0)

    def test_class_allocations_span_range(self, trained_setup):
        counts = sorted(
            a.count
            for a in trained_setup.manager.learning_report.class_allocations.values()
        )
        # Night needs few instances, the peak needs the full pool.
        assert counts[0] <= 3
        assert counts[-1] == 10

    def test_learning_needs_two_workloads(self):
        setup = build_scaleout_setup("messenger")
        with pytest.raises(ValueError):
            setup.manager.learn(setup.trace.hourly_workloads(0)[:1])


class TestClassification:
    def test_known_workload_classifies_with_high_certainty(self, trained_setup):
        manager = trained_setup.manager
        workload = trained_setup.trace.workload_at(10 * 3600.0)
        label, certainty, _xz = manager.classify(workload)
        assert certainty >= manager.config.certainty_threshold
        assert 0 <= label < manager.clustering.n_classes

    def test_unforeseen_volume_has_low_certainty(self, trained_setup):
        manager = trained_setup.manager
        peak = trained_setup.trace.peak_clients
        unseen = Workload(volume=1.4 * peak, mix=CASSANDRA_UPDATE_HEAVY)
        _label, certainty, _xz = manager.classify(unseen)
        assert certainty < manager.config.certainty_threshold

    def test_classify_before_learning_rejected(self):
        setup = build_scaleout_setup("messenger")
        with pytest.raises(RuntimeError):
            setup.manager.classify(setup.trace.workload_at(0.0))


class TestAdaptation:
    def test_hit_deploys_cached_allocation(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        workload = setup.trace.workload_at(10 * 3600.0)
        event = manager.adapt(ctx_at(10 * 3600.0, workload))
        assert event.cache_hit
        assert setup.provider.current_allocation == event.allocation

    def test_miss_deploys_full_capacity(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        unseen = Workload(
            volume=1.4 * setup.trace.peak_clients, mix=CASSANDRA_UPDATE_HEAVY
        )
        event = manager.adapt(ctx_at(3600.0, unseen))
        assert not event.cache_hit
        assert event.allocation == setup.provider.full_capacity()

    def test_adaptation_duration_is_signature_window(self):
        # "DejaVu can adjust ... on the order of a few or several
        # seconds, as needed by the profiler to collect the signatures."
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        event = manager.adapt(ctx_at(0.0, setup.trace.workload_at(0.0)))
        assert event.duration_seconds == manager.profiler.signature_seconds

    def test_consecutive_misses_request_relearn(self):
        config = DejaVuConfig(relearn_after_misses=2)
        setup = build_scaleout_setup("messenger", config=config)
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        unseen = Workload(
            volume=1.5 * setup.trace.peak_clients, mix=CASSANDRA_UPDATE_HEAVY
        )
        manager.adapt(ctx_at(3600.0, unseen))
        assert not manager.relearn_requested
        manager.adapt(ctx_at(7200.0, unseen))
        assert manager.relearn_requested

    def test_hit_resets_miss_streak(self):
        config = DejaVuConfig(relearn_after_misses=2)
        setup = build_scaleout_setup("messenger", config=config)
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        unseen = Workload(
            volume=1.5 * setup.trace.peak_clients, mix=CASSANDRA_UPDATE_HEAVY
        )
        manager.adapt(ctx_at(3600.0, unseen))
        manager.adapt(ctx_at(7200.0, setup.trace.workload_at(7200.0)))
        manager.adapt(ctx_at(10800.0, unseen))
        assert not manager.relearn_requested

    def test_on_step_respects_check_interval(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        workload = setup.trace.workload_at(0.0)
        manager.on_step(ctx_at(0.0, workload))
        manager.on_step(ctx_at(60.0, workload))
        assert len(manager.adaptation_events) == 1

    def test_mean_adaptation_seconds(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        manager.adapt(ctx_at(0.0, setup.trace.workload_at(0.0)))
        assert manager.mean_adaptation_seconds() == pytest.approx(10.0)

    def test_mean_adaptation_without_events_rejected(self):
        setup = build_scaleout_setup("messenger")
        with pytest.raises(ValueError):
            setup.manager.mean_adaptation_seconds()
