"""Unit tests for the profiling and production environments."""

import math

import numpy as np
import pytest

from repro.cloud.instance_types import LARGE
from repro.cloud.provider import Allocation, CloudProvider
from repro.core.profiler import ProductionEnvironment, ProfilingEnvironment
from repro.interference.injector import InterferenceInjector, InterferenceSchedule
from repro.interference.microbenchmark import Microbenchmark
from repro.services.cassandra import CassandraService
from repro.telemetry.monitor import Monitor
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload

WORKLOAD = Workload(volume=300.0, mix=CASSANDRA_UPDATE_HEAVY)


def make_profiler() -> ProfilingEnvironment:
    return ProfilingEnvironment(CassandraService(), Monitor())


class TestProfilingEnvironment:
    def test_signature_seconds_is_monitor_window(self):
        profiler = make_profiler()
        assert profiler.signature_seconds == profiler.monitor.window_seconds

    def test_collects_full_metric_set(self):
        profiler = make_profiler()
        metrics = profiler.collect_metrics(WORKLOAD)
        assert set(metrics) == set(profiler.monitor.metric_names())

    def test_default_clone_is_one_large_instance(self):
        profiler = make_profiler()
        assert profiler.clone_allocation == Allocation(count=1, itype=LARGE)

    def test_isolated_performance_is_interference_free(self):
        profiler = make_profiler()
        sample = profiler.isolated_performance(
            WORKLOAD, Allocation(count=10, itype=LARGE)
        )
        expected = profiler.service.performance(WORKLOAD, 10.0, interference=0.0)
        assert sample.latency_ms == pytest.approx(expected.latency_ms)


class TestProductionEnvironment:
    def test_apply_changes_allocation(self):
        env = ProductionEnvironment(CassandraService(), CloudProvider())
        env.apply(Allocation(count=3, itype=LARGE), t=0.0)
        assert env.provider.current_allocation.count == 3

    def test_apply_notifies_service_on_change_only(self):
        service = CassandraService()
        env = ProductionEnvironment(service, CloudProvider())
        env.apply(Allocation(count=3, itype=LARGE), t=0.0)
        first_resize = service.repartition_penalty_ms(0.0)
        env.apply(Allocation(count=3, itype=LARGE), t=5000.0)
        assert first_resize > 0
        # No re-notification for a no-op apply: penalty decayed.
        assert service.repartition_penalty_ms(5000.0) < first_resize

    def test_no_injector_means_no_interference(self):
        env = ProductionEnvironment(CassandraService(), CloudProvider())
        assert env.interference_at(1000.0) == 0.0

    def test_injector_interference_applied(self):
        schedule = InterferenceSchedule(
            segments=((0.0, Microbenchmark(cpu_fraction=0.2)),)
        )
        env = ProductionEnvironment(
            CassandraService(), CloudProvider(), InterferenceInjector(schedule)
        )
        assert env.interference_at(0.0) > 0.2

    def test_performance_during_warmup_uses_old_capacity(self):
        env = ProductionEnvironment(CassandraService(), CloudProvider())
        env.apply(Allocation(count=10, itype=LARGE), t=0.0)
        sample = env.performance_at(WORKLOAD, t=0.0)
        # Nothing serving yet: the timeout cap is reported.
        assert sample.latency_ms == env.service.model.max_latency_ms

    def test_performance_after_warmup(self):
        env = ProductionEnvironment(CassandraService(), CloudProvider())
        env.apply(Allocation(count=10, itype=LARGE), t=0.0)
        sample = env.performance_at(WORKLOAD, t=60.0)
        assert sample.latency_ms < env.service.model.max_latency_ms

    def test_zero_capacity_sample_is_finite(self):
        # The zero-capacity sentinel used to be utilization=inf, which
        # leaked into fleet-wide numpy aggregates and turned means into
        # inf/NaN.  It must be finite, sit on the model's latency
        # curve, and still read as fully saturated.
        env = ProductionEnvironment(CassandraService(), CloudProvider())
        env.apply(Allocation(count=10, itype=LARGE), t=0.0)
        sample = env.performance_at(WORKLOAD, t=0.0)  # all VMs warming
        model = env.service.model
        assert math.isfinite(sample.utilization)
        assert sample.utilization == model.saturated_utilization
        assert sample.latency_ms == model.max_latency_ms
        # The sentinel pair lies on the model's own curve: evaluating
        # latency at that utilization reproduces the cap.
        capacity = 1.0
        assert model.latency_ms(
            model.saturated_utilization * capacity, capacity
        ) == pytest.approx(model.max_latency_ms)
        # And it aggregates cleanly.
        healthy = env.performance_at(WORKLOAD, t=60.0)
        mean = np.mean([sample.utilization, healthy.utilization])
        assert math.isfinite(mean)

    def test_saturated_utilization_is_minimal(self):
        # saturated_utilization is the *smallest* capped utilization:
        # a hair below it the latency is still under the cap.
        model = CassandraService().model
        rho = model.saturated_utilization
        assert model.latency_ms(rho, 1.0) == model.max_latency_ms
        assert model.latency_ms(rho * (1.0 - 1e-6), 1.0) < model.max_latency_ms
