"""Tests for percentile probe selection under per-VM interference."""

import numpy as np
import pytest

from repro.interference.injector import InterferenceSchedule
from repro.interference.probe_selection import (
    FleetInterference,
    select_probe_instance,
)
from repro.sim.clock import HOUR


class TestSelectProbeInstance:
    def test_max_at_100th_percentile(self):
        values = [0.0, 0.1, 0.2, 0.05]
        assert select_probe_instance(values, 100.0) == 2

    def test_percentile_semantics(self):
        # With 10 instances at distinct levels, the 90th-percentile
        # probe experiences more interference than at least 9 of them.
        values = [i / 100.0 for i in range(10)]
        index = select_probe_instance(values, 90.0)
        probed = values[index]
        assert sum(v < probed for v in values) >= 9

    def test_tightest_valid_bound(self):
        # Among candidates above the percentile target, the least-loaded
        # one is chosen, not the pathological maximum.
        values = [0.0, 0.0, 0.0, 0.5, 0.9]
        index = select_probe_instance(values, 60.0)
        assert values[index] == 0.5

    def test_uniform_fleet(self):
        values = [0.1] * 5
        assert values[select_probe_instance(values, 90.0)] == 0.1

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            select_probe_instance([], 90.0)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            select_probe_instance([0.1], 101.0)


class TestFleetInterference:
    def test_random_fleet_shapes(self):
        fleet = FleetInterference.random(
            n_instances=8, total_seconds=24 * HOUR, seed=1
        )
        assert fleet.n_instances == 8
        values = fleet.interference_at(5 * HOUR)
        assert len(values) == 8
        assert all(0.0 <= v < 1.0 for v in values)

    def test_instances_differ(self):
        fleet = FleetInterference.random(
            n_instances=10, total_seconds=24 * HOUR, seed=2
        )
        values = fleet.interference_at(3 * HOUR)
        assert len(set(np.round(values, 3))) > 1

    def test_probe_is_conservative(self):
        fleet = FleetInterference.random(
            n_instances=10, total_seconds=24 * HOUR, seed=3
        )
        _, probe_value = fleet.probe_at(6 * HOUR, percentile=90.0)
        values = fleet.interference_at(6 * HOUR)
        covered = sum(v <= probe_value for v in values) / len(values)
        assert covered >= 0.9

    def test_mean_between_extremes(self):
        fleet = FleetInterference.random(
            n_instances=10, total_seconds=24 * HOUR, seed=4
        )
        values = fleet.interference_at(0.0)
        assert min(values) <= fleet.mean_at(0.0) <= max(values)

    def test_deterministic_given_seed(self):
        a = FleetInterference.random(4, 24 * HOUR, seed=7)
        b = FleetInterference.random(4, 24 * HOUR, seed=7)
        assert a.interference_at(10 * HOUR) == b.interference_at(10 * HOUR)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetInterference(schedules=())

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            FleetInterference.random(0, 24 * HOUR)

    def test_quiet_schedule_gives_zero(self):
        fleet = FleetInterference(
            schedules=(InterferenceSchedule.none(), InterferenceSchedule.none())
        )
        assert fleet.interference_at(100.0) == [0.0, 0.0]
