"""Property-style invariants for the placement subsystem.

Every registered policy must place each lane on exactly one valid host
under arbitrary (seeded) demand sets; the bin-packing policies must
never overcommit when the demand set provably fits; the classic quality
ordering FFD >= best-fit >= round-robin must hold on the constructed
adversarial set; and migration must conserve the lane population while
never increasing total overcommit.
"""

import numpy as np
import pytest

from repro.sim.hosts import HostMap, SimHost, allocation_demand
from repro.sim.placement import (
    PLACEMENT_POLICIES,
    BestFitPlacement,
    BlockPlacement,
    FirstFitDecreasingPlacement,
    MigrationPolicy,
    RoundRobinPlacement,
    build_host_map,
    host_loads,
    make_policy,
    total_overcommit,
)
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload


def hosts_of(capacities):
    return [SimHost(capacity_units=c, label=f"h{i}") for i, c in enumerate(capacities)]


def workload(units: float) -> Workload:
    mix = CASSANDRA_UPDATE_HEAVY
    return Workload(volume=units / mix.demand_per_client, mix=mix)


ALL_POLICIES = sorted(PLACEMENT_POLICIES)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(PLACEMENT_POLICIES) == {
            "round_robin",
            "block",
            "first_fit_decreasing",
            "best_fit",
        }

    def test_make_policy_by_name_and_object(self):
        assert isinstance(make_policy("best_fit"), BestFitPlacement)
        policy = FirstFitDecreasingPlacement()
        assert make_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            make_policy("tetris")

    def test_non_policy_rejected(self):
        with pytest.raises(TypeError, match="not a placement policy"):
            make_policy(42)


class TestEveryPolicyPlacesEveryLane:
    """Each lane on exactly one host, whatever the demands look like."""

    @pytest.mark.parametrize("name", ALL_POLICIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_demands_all_placed(self, name, seed):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0.0, 9.0, size=23).tolist()
        hosts = hosts_of([10.0] * 4)
        placement = make_policy(name).place(demands, hosts)
        assert len(placement) == len(demands)
        assert all(0 <= host < len(hosts) for host in placement)

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_overfull_instance_still_places_everyone(self, name):
        # Nothing fits: every lane bigger than every host.  Placement
        # must degrade into overcommit, never drop a lane.
        demands = [50.0] * 7
        placement = make_policy(name).place(demands, hosts_of([10.0, 10.0]))
        assert len(placement) == 7
        assert all(host in (0, 1) for host in placement)

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_empty_hosts_rejected(self, name):
        with pytest.raises(ValueError, match="host"):
            make_policy(name).place([1.0], [])

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_negative_demand_rejected(self, name):
        with pytest.raises(ValueError, match="negative"):
            make_policy(name).place([1.0, -1.0], hosts_of([10.0]))


class TestLegacyPlacementsReexpressed:
    def test_round_robin_is_spread(self):
        demands = [3.0, 9.0, 1.0, 4.0, 2.0]
        placement = RoundRobinPlacement().place(demands, hosts_of([10.0] * 2))
        assert placement == list(HostMap.spread(5, 2, 10.0).placement)

    def test_block_is_pack(self):
        demands = [3.0, 9.0, 1.0, 4.0, 2.0]
        placement = BlockPlacement(lanes_per_host=2).place(
            demands, hosts_of([10.0] * 3)
        )
        assert placement == list(HostMap.pack(5, 2, 10.0).placement)

    def test_block_derives_block_size_from_host_count(self):
        placement = BlockPlacement().place([1.0] * 5, hosts_of([10.0] * 3))
        assert placement == [0, 0, 1, 1, 2]

    def test_block_needs_enough_hosts(self):
        with pytest.raises(ValueError, match="hosts"):
            BlockPlacement(lanes_per_host=2).place([1.0] * 5, hosts_of([10.0] * 2))


class TestBinPackingNeverOvercommitsWhenItFits:
    # A demand set with a known perfect packing that both greedy
    # packers find: pairs summing exactly to the capacity.
    DEMANDS = [2.0, 8.0, 6.0, 4.0, 7.0, 3.0, 5.0, 5.0]

    @pytest.mark.parametrize("name", ["first_fit_decreasing", "best_fit"])
    def test_no_host_over_capacity(self, name):
        hosts = hosts_of([10.0] * 4)
        placement = make_policy(name).place(self.DEMANDS, hosts)
        loads = host_loads(placement, self.DEMANDS, len(hosts))
        assert loads.max() <= 10.0 + 1e-9
        assert total_overcommit(placement, self.DEMANDS, hosts) == 0.0

    def test_ffd_handles_exact_fits(self):
        hosts = hosts_of([10.0, 10.0])
        placement = FirstFitDecreasingPlacement().place(
            [10.0, 10.0], hosts
        )
        assert sorted(placement) == [0, 1]
        assert total_overcommit(placement, [10.0, 10.0], hosts) == 0.0


class TestQualityOrdering:
    """FFD >= best-fit >= round-robin on the adversarial set.

    Small items arrive first (poisoning best fit's gaps) and big items
    stride at the host count (so round-robin stacks them): FFD packs
    perfectly, best fit overcommits a little, round-robin a lot.
    """

    DEMANDS = [2.0, 2.0, 8.0, 8.0, 2.0, 2.0, 8.0, 8.0]
    CAPS = [10.0] * 4

    def overcommit(self, name):
        hosts = hosts_of(self.CAPS)
        placement = make_policy(name).place(self.DEMANDS, hosts)
        return total_overcommit(placement, self.DEMANDS, hosts)

    def test_strict_ordering(self):
        ffd = self.overcommit("first_fit_decreasing")
        best_fit = self.overcommit("best_fit")
        round_robin = self.overcommit("round_robin")
        assert ffd == 0.0
        assert ffd < best_fit < round_robin


class TestPolicyPermutation:
    """Shuffling lane order never loses a lane (seeded property)."""

    @pytest.mark.parametrize("name", ALL_POLICIES)
    @pytest.mark.parametrize("seed", [7, 11, 13])
    def test_permuted_lanes_all_placed(self, name, seed):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0.5, 9.5, size=17)
        perm = rng.permutation(len(demands))
        hosts = hosts_of([12.0] * 3)
        placement = np.asarray(
            make_policy(name).place(demands[perm].tolist(), hosts)
        )
        assert placement.shape == (17,)
        assert set(np.unique(placement)) <= set(range(3))
        # Every permuted lane index appears exactly once in the
        # placement's domain — nothing was dropped or duplicated.
        assert sorted(perm.tolist()) == list(range(17))
        # Order-insensitive policies place the same multiset of demands
        # onto hosts with the same total load.
        if name == "first_fit_decreasing":
            base = make_policy(name).place(demands.tolist(), hosts)
            permuted_loads = host_loads(placement.tolist(), demands[perm], 3)
            base_loads = host_loads(base, demands, 3)
            np.testing.assert_allclose(
                np.sort(permuted_loads), np.sort(base_loads)
            )


class TestMigration:
    DEMANDS = np.array([8.0, 8.0, 1.0, 1.0])

    def make_map(self, policy=None):
        # Both heavy lanes on host 0 (blockwise), light lanes on host 1.
        return HostMap(
            hosts_of([10.0, 10.0]),
            [0, 0, 1, 1],
            migration=policy
            if policy is not None
            else MigrationPolicy(rebalance_every=2, blackout_seconds=100.0),
        )

    def workloads(self):
        return [workload(units) for units in self.DEMANDS]

    def test_migration_conserves_lane_count(self):
        host_map = self.make_map()
        for step in range(4):
            host_map.apply_step(step * 60.0, self.workloads())
        assert host_map.migrations >= 1
        placement = host_map.placement
        assert len(placement) == 4
        assert all(host in (0, 1) for host in placement)
        assert sum(len(host_map.lanes_on(h)) for h in range(2)) == 4

    def test_migration_reduces_overcommit(self):
        host_map = self.make_map()
        before = total_overcommit(
            host_map.placement, self.DEMANDS, host_map.hosts
        )
        for step in range(4):
            host_map.apply_step(step * 60.0, self.workloads())
        after = total_overcommit(
            host_map.placement, self.DEMANDS, host_map.hosts
        )
        assert before > 0.0
        assert after < before

    def test_blackout_charges_migrated_lane(self):
        host_map = self.make_map(
            MigrationPolicy(
                rebalance_every=1, blackout_seconds=1000.0, blackout_theft=0.4
            )
        )
        host_map.apply_step(0.0, self.workloads())
        host_map.apply_step(60.0, self.workloads())  # rebalance fires here
        assert host_map.migrations == 1
        moved = int(np.flatnonzero(host_map.lane_migrations)[0])
        # During the blackout the moved lane reads at least the
        # blackout theft through its ordinary interference feed.
        assert host_map.feed(moved).interference_at(60.0) >= 0.4
        # After the window closes the theft falls back to the packing's.
        host_map.apply_step(2000.0, self.workloads())
        assert host_map.feed(moved).interference_at(2000.0) < 0.4

    def test_lone_tenant_overload_never_migrates(self):
        host_map = HostMap(
            hosts_of([5.0, 50.0]),
            [0, 1, 1],
            migration=MigrationPolicy(rebalance_every=1),
        )
        # Host 0's single tenant overloads it; moving would not fix
        # self-saturation, so the planner must leave it alone.
        for step in range(3):
            host_map.apply_step(
                step * 60.0, [workload(8.0), workload(1.0), workload(1.0)]
            )
        assert host_map.migrations == 0

    def test_migration_policy_validation(self):
        with pytest.raises(ValueError, match="rebalance"):
            MigrationPolicy(rebalance_every=0)
        with pytest.raises(ValueError, match="blackout"):
            MigrationPolicy(blackout_seconds=-1.0)
        with pytest.raises(ValueError, match="theft"):
            MigrationPolicy(blackout_theft=1.5)
        with pytest.raises(ValueError, match="move"):
            MigrationPolicy(max_moves=0)
        with pytest.raises(ValueError, match="mode"):
            MigrationPolicy(mode="defrag")
        with pytest.raises(ValueError, match="headroom"):
            MigrationPolicy(drain_headroom=0.0)

    def test_plan_validates_capacities_shape(self):
        with pytest.raises(ValueError, match="capacity"):
            MigrationPolicy().plan(
                [0], [1.0], hosts_of([10.0]), capacities=[10.0, 10.0]
            )

    def test_manual_migrate_validates(self):
        host_map = self.make_map()
        with pytest.raises(ValueError, match="unknown host"):
            host_map.migrate(0, 9, t=0.0)
        with pytest.raises(IndexError):
            host_map.migrate(9, 0, t=0.0)
        dedicated = HostMap(hosts_of([10.0]), [0, None])
        with pytest.raises(ValueError, match="dedicated"):
            dedicated.migrate(1, 0, t=0.0)


class TestLoneTenantSkip:
    """Bugfix regression: a lone self-saturating tenant on the *worst*
    host used to abort the whole rebalance; the planner must skip it
    and still relieve the next-worst host in the same cycle."""

    def test_next_worst_host_still_relieved(self):
        # Host 0's lone tenant gives it the largest excess (10 over a
        # 5-unit host), so it sorts first; host 1 (8 + 8 on 10 units)
        # is relievable — one of its tenants fits on empty host 2.
        hosts = hosts_of([5.0, 10.0, 50.0])
        moves = MigrationPolicy().plan([0, 1, 1], [15.0, 8.0, 8.0], hosts)
        assert moves
        lane, target = moves[0]
        assert lane in (1, 2)
        assert target == 2

    def test_two_overloaded_hosts_end_to_end(self):
        host_map = HostMap(
            hosts_of([5.0, 10.0, 50.0]),
            [0, 1, 1],
            migration=MigrationPolicy(rebalance_every=1),
        )
        loads = [workload(15.0), workload(8.0), workload(8.0)]
        for step in range(3):
            host_map.apply_step(step * 60.0, loads)
        # The lone tenant never moves, but host 1 still got relief.
        assert host_map.migrations >= 1
        assert host_map.placement[0] == 0
        assert 2 in host_map.placement[1:]


class TestFaultAwarePlanning:
    """Bugfix regression: the planner packs against effective
    (fault-adjusted) capacities, never a dead host's nominal size."""

    def test_plan_never_targets_dead_host(self):
        # With nominal capacities, empty dead host 0 would look like
        # the roomiest fit for host 1's pressure; the effective
        # capacities say it holds nothing.
        hosts = hosts_of([10.0, 10.0, 10.0])
        moves = MigrationPolicy().plan(
            [1, 1, 2],
            [8.0, 8.0, 2.0],
            hosts,
            capacities=[0.0, 10.0, 10.0],
        )
        assert moves
        assert all(target != 0 for _lane, target in moves)

    def test_drain_never_targets_dead_host(self):
        moves = MigrationPolicy(mode="consolidate").plan(
            [1, 1, 2],
            [3.0, 3.0, 1.0],
            hosts_of([10.0, 10.0, 10.0]),
            capacities=[0.0, 10.0, 10.0],
        )
        assert moves
        assert all(target != 0 for _lane, target in moves)

    def test_rebalance_never_lands_on_downed_host(self):
        # End-to-end with a fault schedule: host 0 dies at step 1, the
        # step-3 rebalance must relieve host 1 onto live host 2 (the
        # capacity-blind planner targeted dead host 0 and the move was
        # vetoed, leaving the pressure unrelieved).
        from repro.sim.faults import parse_faults

        host_map = HostMap(
            hosts_of([10.0, 10.0, 10.0]),
            [0, 1, 1, 2],
            migration=MigrationPolicy(rebalance_every=3),
        )
        host_map.attach_faults(parse_faults("host:0@1+10"))
        loads = [workload(2.0), workload(8.0), workload(8.0), workload(2.0)]
        for step in range(6):
            host_map.apply_step(step * 60.0, loads)
            if host_map._host_down[0]:
                assert 0 not in host_map.placement
        assert host_map.host_failures == 1
        assert host_map.migrations >= 1


class TestConsolidation:
    """The consolidate mode's drain: atomic, headroom-bounded, and
    only on cycles where pressure relief has nothing to do."""

    def test_drains_coldest_feasible_host(self):
        hosts = hosts_of([10.0, 10.0, 10.0])
        # No pressure anywhere; host 2 is coldest and its lone tenant
        # fits on host 0 within the drain headroom.
        moves = MigrationPolicy(mode="consolidate").plan(
            [0, 0, 1, 2], [3.0, 3.0, 5.0, 1.0], hosts
        )
        assert moves == [(3, 0)]

    def test_drain_is_atomic(self):
        # Both tenants of the cold host move in the same rebalance,
        # max_moves=1 notwithstanding.
        hosts = hosts_of([10.0, 10.0, 10.0])
        moves = MigrationPolicy(mode="consolidate", max_moves=1).plan(
            [0, 0, 1, 2, 2], [4.0, 4.0, 6.0, 1.0, 1.0], hosts
        )
        assert sorted(lane for lane, _target in moves) == [3, 4]
        assert all(target in (0, 1) for _lane, target in moves)

    def test_pressure_relief_comes_first(self):
        # Under relievable pressure the cycle is pure pressure relief —
        # no drain rides along.
        hosts = hosts_of([10.0, 10.0])
        moves = MigrationPolicy(mode="consolidate").plan(
            [0, 0, 1], [8.0, 8.0, 1.0], hosts
        )
        assert len(moves) == 1
        assert moves[0][1] == 1  # relief move, toward the cold host

    def test_drain_respects_headroom(self):
        hosts = hosts_of([10.0, 10.0])
        placement = [0, 0, 1]
        demands = [4.0, 4.0, 1.0]
        # At 0.85 headroom host 0 offers 8.5 - 8 = 0.5 < 1: infeasible
        # in both directions, so nothing drains.
        tight = MigrationPolicy(mode="consolidate", drain_headroom=0.85)
        assert tight.plan(placement, demands, hosts) == []
        # At full headroom the cold host's tenant fits and drains.
        full = MigrationPolicy(mode="consolidate", drain_headroom=1.0)
        assert full.plan(placement, demands, hosts) == [(2, 0)]

    def test_lone_powered_host_never_drained(self):
        hosts = hosts_of([10.0, 10.0])
        moves = MigrationPolicy(mode="consolidate").plan(
            [0, 0], [1.0, 1.0], hosts
        )
        assert moves == []

    def test_pressure_mode_never_drains(self):
        hosts = hosts_of([10.0, 10.0, 10.0])
        moves = MigrationPolicy(mode="pressure").plan(
            [0, 0, 1, 2], [3.0, 3.0, 5.0, 1.0], hosts
        )
        assert moves == []

    def test_drained_host_powers_off(self):
        # End-to-end: after the drain the emptied host stops accruing
        # host-on samples (the energy axis the studies report).
        host_map = HostMap(
            hosts_of([10.0, 10.0]),
            [0, 1],
            migration=MigrationPolicy(
                mode="consolidate", rebalance_every=1
            ),
        )
        loads = [workload(2.0), workload(2.0)]
        for step in range(4):
            host_map.apply_step(step * 60.0, loads)
        assert host_map.migrations == 1
        assert tuple(host_map.placement) == (1, 1)
        # Step 0: both hosts on (no rebalance yet); steps 1-3: one.
        assert host_map.host_on_steps == 2 + 3
        assert host_map.mean_hosts_on == pytest.approx(5 / 4)


class TestAllocationAwareDemand:
    def test_footprint_tracks_deployed_capacity(self):
        host_map = build_host_map(
            "round_robin",
            [6.0, 6.0],
            n_hosts=1,
            capacity_units=10.0,
            demand_fn=allocation_demand,
        )
        assert host_map.allocation_aware
        # Offered 6+6 would overload the 10-unit host, but each lane
        # only has 3 units deployed: footprints are capped, no theft.
        thefts = host_map.apply_step(
            0.0, [workload(6.0), workload(6.0)], capacities=[3.0, 3.0]
        )
        assert thefts.tolist() == [0.0, 0.0]
        # Scale-up: deployed capacity grows, the footprints press the
        # full offered demand and the host overcommits.
        thefts = host_map.apply_step(
            60.0, [workload(6.0), workload(6.0)], capacities=[8.0, 8.0]
        )
        assert thefts[0] > 0.0 and thefts[1] > 0.0

    def test_allocation_aware_requires_capacities(self):
        host_map = build_host_map(
            "round_robin",
            [1.0],
            n_hosts=1,
            capacity_units=10.0,
            demand_fn=allocation_demand,
        )
        with pytest.raises(ValueError, match="deployed"):
            host_map.apply_step(0.0, [workload(1.0)])

    def test_custom_four_arg_demand_fn(self):
        calls = []

        def tracer(lane, deployed_capacity, workload_, t):
            calls.append((lane, deployed_capacity, t))
            return 0.0

        host_map = build_host_map(
            "round_robin", [1.0, 1.0], n_hosts=1, capacity_units=10.0,
            demand_fn=tracer,
        )
        host_map.apply_step(
            5.0, [workload(1.0), workload(2.0)], capacities=[7.0, 8.0]
        )
        assert calls == [(0, 7.0, 5.0), (1, 8.0, 5.0)]

    def test_bad_demand_fn_arity_rejected(self):
        with pytest.raises(ValueError, match="demand_fn"):
            HostMap(hosts_of([10.0]), [0], demand_fn=lambda a, b: 0.0)

    def test_offered_default_is_not_allocation_aware(self):
        host_map = HostMap.spread(2, 1, 10.0)
        assert not host_map.allocation_aware

    def test_engine_capacity_cache_tracks_warmup_across_steps(self):
        # Regression: with a step interval shorter than the VM warm-up,
        # the engine's memoized deployed-capacity read must take one
        # final refresh at the first step past the settle time — a
        # scale-up's warmed capacity must not stay cached at the
        # pre-warm value until the next allocation change.
        from repro.cloud.instance_types import LARGE
        from repro.cloud.provider import Allocation, CloudProvider
        from repro.sim.fleet import FleetEngine, FleetLane

        provider = CloudProvider(max_instances=10)

        class ScaleUpOnce:
            def __init__(self):
                self.production = type("P", (), {"provider": provider})()

            def on_step(self, ctx):
                if ctx.t == 0.0:
                    provider.apply(Allocation(count=4, itype=LARGE), 0.0)

        class Idle:
            def on_step(self, ctx):
                pass

        host_map = HostMap(
            hosts_of([10.0]), [0, 0], demand_fn=allocation_demand
        )
        observe = lambda ctx: {"x": 0.0}  # noqa: E731
        lanes = [
            FleetLane(lambda t: workload(6.0), ScaleUpOnce(), observe, "a"),
            FleetLane(lambda t: workload(6.0), Idle(), observe, "b"),
        ]
        engine = FleetEngine(
            lanes, step_seconds=5.0, host_map=host_map, batched=False
        )
        seen = []
        inner = engine._lane_capacities

        def spy(t):
            caps = inner(t)
            seen.append((float(caps[0]), provider.capacity_at(t)))
            return caps

        engine._lane_capacities = spy
        engine.run(30.0)  # warm-up is 8 s: spans a step boundary
        assert any(true > 0.0 for _cached, true in seen)
        for cached, true in seen:
            assert cached == true


class TestBuildHostMap:
    def test_builds_policy_placement(self):
        host_map = build_host_map(
            "first_fit_decreasing", [8.0, 8.0, 2.0, 2.0], 2, 10.0
        )
        loads = host_loads(host_map.placement, [8.0, 8.0, 2.0, 2.0], 2)
        assert loads.tolist() == [10.0, 10.0]

    def test_validates_host_count(self):
        with pytest.raises(ValueError, match="host"):
            build_host_map("round_robin", [1.0], 0, 10.0)
