"""Tests for the batch-workload extension (Sec. 3.7)."""

import pytest

from repro.services.batch import (
    BatchDiagnosis,
    BatchHost,
    BatchTask,
    BatchWorkloadAdvisor,
)


def task(work: float = 100.0, expected: float = 110.0) -> BatchTask:
    return BatchTask(work_units=work, expected_seconds=expected)


class TestBatchHost:
    def test_isolated_runtime(self):
        host = BatchHost(units_per_second=2.0)
        assert host.runtime_seconds(task(work=100.0)) == pytest.approx(50.0)

    def test_interference_slows_task(self):
        host = BatchHost()
        clean = host.runtime_seconds(task())
        degraded = host.runtime_seconds(task(), interference=0.2)
        assert degraded == pytest.approx(clean / 0.8)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            BatchHost(units_per_second=0.0)

    def test_bad_interference_rejected(self):
        with pytest.raises(ValueError):
            BatchHost().runtime_seconds(task(), interference=1.0)


class TestBatchTask:
    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            BatchTask(work_units=0.0, expected_seconds=10.0)

    def test_zero_expectation_rejected(self):
        with pytest.raises(ValueError):
            BatchTask(work_units=1.0, expected_seconds=0.0)


class TestAdvisor:
    def test_fast_task_meets_expectation(self):
        advisor = BatchWorkloadAdvisor()
        report = advisor.investigate(task(work=100.0, expected=110.0), 0.0)
        assert report.diagnosis is BatchDiagnosis.MEETS_EXPECTATION
        assert report.interference_band == 0

    def test_interference_diagnosed(self):
        # In isolation the task meets the expectation; under a 20% hog
        # it does not -> interference.
        advisor = BatchWorkloadAdvisor()
        report = advisor.investigate(task(work=100.0, expected=110.0), 0.25)
        assert report.diagnosis is BatchDiagnosis.INTERFERENCE
        assert report.interference_index == pytest.approx(1.0 / 0.75)
        assert report.interference_band >= 1

    def test_misestimation_diagnosed(self):
        # Even in isolation the task takes 200 s against a 120 s
        # expectation: "the user simply mis-estimated".
        advisor = BatchWorkloadAdvisor()
        report = advisor.investigate(task(work=200.0, expected=120.0), 0.2)
        assert report.diagnosis is BatchDiagnosis.MISESTIMATED

    def test_tolerance_absorbs_small_overshoot(self):
        # 5% over the expectation is inside the default 10% tolerance.
        advisor = BatchWorkloadAdvisor()
        report = advisor.investigate(task(work=105.0, expected=100.0), 0.0)
        assert report.diagnosis is BatchDiagnosis.MEETS_EXPECTATION

    def test_interference_band_scales_with_hog(self):
        advisor = BatchWorkloadAdvisor()
        light = advisor.investigate(task(work=100.0, expected=100.0), 0.15)
        heavy = advisor.investigate(task(work=100.0, expected=100.0), 0.40)
        assert light.diagnosis is BatchDiagnosis.INTERFERENCE
        assert heavy.diagnosis is BatchDiagnosis.INTERFERENCE
        assert heavy.interference_band > light.interference_band

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            BatchWorkloadAdvisor(tolerance=-0.1)
