"""Integration tests: the scale-out case studies (Figs. 6-7, Sec. 4.1).

These run the full week-long simulations and assert the paper's *shapes*:
who wins, by roughly what factor, and which qualitative events occur.
"""

import pytest

from repro.experiments.scaling import REUSE_WINDOW, run_scaleout_comparison
from repro.sim.clock import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def messenger():
    return run_scaleout_comparison("messenger")


@pytest.fixture(scope="module")
def hotmail():
    return run_scaleout_comparison("hotmail")


class TestMessengerScaleOut:
    def test_four_workload_classes(self, messenger):
        # "The initial tuning produces 4 different workload classes."
        assert messenger.n_classes == 4

    def test_savings_in_paper_band(self, messenger):
        # Paper: ~55% over the 6-day period; we accept 45-65%.
        saving = messenger.costs["dejavu"].saving_fraction
        assert 0.45 <= saving <= 0.65

    def test_dejavu_keeps_slo_except_blips(self, messenger):
        # "DejaVu keeps the latency below 60 ms, except for short
        # periods" — adaptation blips only.
        assert messenger.slo["dejavu"].violation_fraction < 0.03

    def test_autopilot_violates_substantially(self, messenger):
        # Paper reports >= 28% on the real traces; our synthetic trace's
        # day-to-day variability is milder, but Autopilot must violate
        # at least an order of magnitude more than DejaVu.
        autopilot = messenger.slo["autopilot"].violation_fraction
        dejavu = messenger.slo["dejavu"].violation_fraction
        assert autopilot >= 0.12
        assert autopilot > 10 * dejavu

    def test_no_cache_misses_on_messenger(self, messenger):
        # All Messenger reuse-day workloads belong to learned classes.
        assert messenger.n_misses <= 1

    def test_overprovision_never_violates(self, messenger):
        assert messenger.slo["overprovision"].violation_fraction == 0.0

    def test_adaptation_is_seconds_not_minutes(self, messenger):
        assert messenger.mean_adaptation_seconds <= 15.0

    def test_instance_counts_track_load(self, messenger):
        series = messenger.results["dejavu"].series["instances"]
        # Night hours run few instances, the peak hour the full pool.
        reuse = series.window(*REUSE_WINDOW)
        assert reuse.values.min() <= 3
        assert reuse.values.max() == 10


class TestHotmailScaleOut:
    def test_three_workload_classes(self, hotmail):
        # "the initial profiling identified 3 workload classes for the
        # HotMail traces, instead of 4 for the Messenger traces."
        assert hotmail.n_classes == 3

    def test_savings_in_paper_band(self, hotmail):
        # Paper: ~60%; we accept 50-65%.
        saving = hotmail.costs["dejavu"].saving_fraction
        assert 0.50 <= saving <= 0.65

    def test_day4_surge_falls_back_to_full_capacity(self, hotmail):
        # "During the 4th day, DejaVu could not classify one workload
        # with the desired confidence ... DejaVu decided to use the full
        # capacity."
        assert 3 <= hotmail.n_misses <= 5
        surge_day = (3 * SECONDS_PER_DAY, 4 * SECONDS_PER_DAY)
        instances = hotmail.results["dejavu"].series["instances"]
        surge_values = instances.window(*surge_day).values
        assert surge_values.max() == 10

    def test_dejavu_keeps_slo_except_blips(self, hotmail):
        assert hotmail.slo["dejavu"].violation_fraction < 0.03

    def test_autopilot_worse_than_dejavu(self, hotmail):
        assert (
            hotmail.slo["autopilot"].violation_fraction
            > 10 * hotmail.slo["dejavu"].violation_fraction
        )


class TestCrossTrace:
    def test_savings_bands_overlap_papers(self, messenger, hotmail):
        # Sec. 4.5: 50-60% when scaling out (we allow 45-65%).
        for comparison in (messenger, hotmail):
            saving = comparison.costs["dejavu"].saving_fraction
            assert 0.45 <= saving <= 0.65

    def test_dejavu_cheaper_than_autopilot_or_safer(self, messenger, hotmail):
        # Autopilot may spend less, but only by violating the SLO much
        # more; DejaVu must dominate on the combined criterion.
        for comparison in (messenger, hotmail):
            dv_violations = comparison.slo["dejavu"].violation_fraction
            ap_violations = comparison.slo["autopilot"].violation_fraction
            assert dv_violations < ap_violations
