"""Profiling-queue feedback: contention changes behavior, not just books.

PR-2's queue was accounting-only: rejected or late profiling still let
the manager adapt instantly, and only per-adaptation collections were
charged.  These tests pin the feedback semantics: a rejected request
defers the adaptation to the next step, a waited-for request delays the
deployment by the queue residency, and auto-relearn sweeps plus
interference-escalation probes are charged through the queue instead of
bypassing it.
"""

import pytest

from repro.core.manager import DejaVuConfig
from repro.experiments.interference_study import (
    INTERFERENCE_LATENCY_MARGIN,
    INTERFERENCE_PEAK_DEMAND,
)
from repro.experiments.setup import build_scaleout_setup
from repro.interference.injector import InterferenceInjector, InterferenceSchedule
from repro.interference.microbenchmark import Microbenchmark
from repro.sim.engine import StepContext
from repro.sim.fleet import ProfilingQueue

SIGNATURE_SECONDS = 10.0


def trained_setup(config: DejaVuConfig | None = None, seed: int = 0):
    setup = build_scaleout_setup(seed=seed, config=config)
    setup.manager.learn(setup.trace.hourly_workloads(day=0))
    return setup


def ctx_at(setup, t: float) -> StepContext:
    return StepContext(
        t=t,
        workload=setup.trace.workload_at(t),
        hour=int(t // 3600),
        day=int(t // 86400),
    )


class TestUncontendedQueueIsTransparent:
    def test_events_identical_with_and_without_queue(self):
        plain = trained_setup()
        queued = trained_setup()
        queued.manager.attach_profiling_queue(
            ProfilingQueue(slots=1, service_seconds=SIGNATURE_SECONDS)
        )
        for t in (0.0, 3600.0, 7200.0):
            a = plain.manager.adapt(ctx_at(plain, t))
            b = queued.manager.adapt(ctx_at(queued, t))
            assert a == b
        assert queued.manager.deferred_adaptations == 0
        assert queued.manager.pending_deployment is None


class TestWaitDelaysDeployment:
    def test_waited_signature_defers_the_deploy(self):
        queue = ProfilingQueue(slots=1, service_seconds=SIGNATURE_SECONDS)
        first = trained_setup(seed=0)
        second = trained_setup(seed=1)
        first.manager.attach_profiling_queue(queue)
        second.manager.attach_profiling_queue(queue)

        first.manager.on_step(ctx_at(first, 0.0))
        assert first.provider.current_allocation.count > 0  # no wait

        second.manager.on_step(ctx_at(second, 0.0))
        # The slot was busy: the signature finishes 10 s late, so the
        # decision has not deployed yet — the old (empty) allocation
        # keeps serving.
        event = second.manager.adaptation_events[-1]
        assert event.duration_seconds == SIGNATURE_SECONDS + 10.0
        assert second.provider.current_allocation.count == 0
        pending = second.manager.pending_deployment
        assert pending is not None
        assert pending.apply_at == 10.0

        # The next engine step notices the pending deployment and lands
        # it at its finish time.
        second.manager.on_step(ctx_at(second, 300.0))
        assert second.manager.pending_deployment is None
        assert second.provider.current_allocation == pending.allocation
        assert second.provider.last_change_at == 10.0

    def test_unqueued_manager_never_pends(self):
        setup = trained_setup()
        setup.manager.on_step(ctx_at(setup, 0.0))
        assert setup.manager.pending_deployment is None
        event = setup.manager.adaptation_events[-1]
        assert event.duration_seconds == SIGNATURE_SECONDS


class TestRejectionDefersAdaptation:
    def test_rejected_adaptation_retries_next_step(self):
        queue = ProfilingQueue(
            slots=1, service_seconds=SIGNATURE_SECONDS, max_pending=0
        )
        blocker = trained_setup(seed=0)
        victim = trained_setup(seed=1)
        blocker.manager.attach_profiling_queue(queue)
        victim.manager.attach_profiling_queue(queue)

        blocker.manager.on_step(ctx_at(blocker, 0.0))
        victim.manager.on_step(ctx_at(victim, 0.0))
        # The slot was taken and the bounded queue refused to stack the
        # request: no adaptation event, nothing deployed.
        assert victim.manager.deferred_adaptations == 1
        assert victim.manager.adaptation_events == []
        assert victim.provider.current_allocation.count == 0

        # The periodic check was NOT pushed a whole interval out: the
        # very next step retries (slot free again by then) and adapts.
        victim.manager.on_step(ctx_at(victim, 300.0))
        assert len(victim.manager.adaptation_events) == 1
        assert victim.provider.current_allocation.count > 0

    def test_rejection_counted_in_queue(self):
        queue = ProfilingQueue(
            slots=1, service_seconds=SIGNATURE_SECONDS, max_pending=0
        )
        queue.request(0.0)
        setup = trained_setup()
        setup.manager.attach_profiling_queue(queue)
        assert setup.manager.adapt(ctx_at(setup, 0.0)) is None
        assert queue.rejected == 1


class TestRelearnSweepCharged:
    def test_relearn_burst_hits_the_queue(self):
        setup = trained_setup()
        queue = ProfilingQueue(slots=1, service_seconds=SIGNATURE_SECONDS)
        setup.manager.attach_profiling_queue(queue)
        day1 = setup.trace.hourly_workloads(day=1)
        before = queue.total_requests
        setup.manager.relearn(now=0.0, workloads=day1)
        burst = queue.total_requests - before
        assert burst == len(day1) * setup.manager.config.trials_per_workload

    def test_relearn_burst_bypasses_the_pending_bound(self):
        # The sweep is a scheduled burst, not an online arrival: with a
        # zero-waiter bound it still stacks FIFO instead of being
        # rejected.
        setup = trained_setup()
        queue = ProfilingQueue(
            slots=1, service_seconds=SIGNATURE_SECONDS, max_pending=0
        )
        setup.manager.attach_profiling_queue(queue)
        setup.manager.relearn(
            now=0.0, workloads=setup.trace.hourly_workloads(day=1)
        )
        assert queue.rejected == 0
        assert queue.max_depth > 1


class TestEscalationProbeCharged:
    def interference_setup(self):
        schedule = InterferenceSchedule(
            segments=((0.0, Microbenchmark(cpu_fraction=0.10)),)
        )
        config = DejaVuConfig(pretune_bands=(0, 1, 2))
        setup = build_scaleout_setup(
            "messenger",
            peak_demand=INTERFERENCE_PEAK_DEMAND,
            latency_margin=INTERFERENCE_LATENCY_MARGIN,
            interference_schedule=schedule,
            config=config,
        )
        setup.manager.learn(setup.trace.hourly_workloads(day=0))
        return setup

    def test_probe_runs_are_charged(self):
        setup = self.interference_setup()
        queue = ProfilingQueue(slots=4, service_seconds=SIGNATURE_SECONDS)
        setup.manager.attach_profiling_queue(queue)
        event = setup.manager.adapt(ctx_at(setup, 34 * 3600.0))
        assert event.cache_hit
        # The hog forced at least one escalation probe on top of the
        # signature collection.
        assert setup.manager._deployed_band >= 1
        assert queue.total_requests >= 2

    def test_probe_rejection_abandons_escalation(self):
        setup = self.interference_setup()
        # One slot and no waiters allowed: the signature itself gets the
        # slot, so the escalation probe is rejected.
        queue = ProfilingQueue(
            slots=1, service_seconds=SIGNATURE_SECONDS, max_pending=0
        )
        setup.manager.attach_profiling_queue(queue)
        event = setup.manager.adapt(ctx_at(setup, 34 * 3600.0))
        assert event is not None and event.cache_hit
        # Blame could not be attributed: no band escalation happened.
        assert setup.manager._deployed_band == 0
