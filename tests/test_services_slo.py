"""Unit tests for SLO objects."""

import pytest

from repro.services.slo import LatencySLO, QoSSLO


class TestLatencySLO:
    def test_met_at_bound(self):
        assert LatencySLO(60.0).is_met(60.0)

    def test_violated_above_bound(self):
        assert LatencySLO(60.0).is_violated(60.1)

    def test_headroom_sign(self):
        slo = LatencySLO(60.0)
        assert slo.headroom(50.0) > 0
        assert slo.headroom(70.0) < 0

    def test_zero_bound_rejected(self):
        with pytest.raises(ValueError):
            LatencySLO(0.0)


class TestQoSSLO:
    def test_met_at_floor(self):
        assert QoSSLO(95.0).is_met(95.0)

    def test_violated_below_floor(self):
        assert QoSSLO(95.0).is_violated(94.9)

    def test_headroom_sign(self):
        slo = QoSSLO(95.0)
        assert slo.headroom(99.0) > 0
        assert slo.headroom(90.0) < 0

    def test_floor_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QoSSLO(0.0)
        with pytest.raises(ValueError):
            QoSSLO(101.0)
