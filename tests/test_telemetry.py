"""Unit tests for the telemetry substrate."""

import numpy as np
import pytest

from repro.telemetry.counters import (
    HARDWARE_REGISTERS,
    CounterReading,
    HPCSampler,
)
from repro.telemetry.events import (
    ACTIVITY_DIMS,
    EVENT_CATALOGUE,
    TABLE1_EVENTS,
    HPCEvent,
    event_by_name,
    event_names,
)
from repro.telemetry.monitor import Monitor
from repro.telemetry.xentop import XENTOP_METRICS, XentopSampler
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, RUBIS_BIDDING, Workload

WORKLOAD = Workload(volume=300.0, mix=CASSANDRA_UPDATE_HEAVY)


class TestEventCatalogue:
    def test_has_sixty_events(self):
        # "up to 60 different events can be monitored" on the X5472.
        assert len(EVENT_CATALOGUE) == 60

    def test_names_unique(self):
        names = event_names()
        assert len(set(names)) == len(names)

    def test_table1_events_present(self):
        for name in TABLE1_EVENTS:
            assert event_by_name(name) is not None

    def test_table1_has_eight_events(self):
        assert len(TABLE1_EVENTS) == 8

    def test_unknown_event_rejected(self):
        with pytest.raises(KeyError):
            event_by_name("no_such_event")

    def test_event_weight_arity_enforced(self):
        with pytest.raises(ValueError):
            HPCEvent(name="bad", weights=(1.0,), baseline=0.0, noise_sd=0.1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            HPCEvent(
                name="bad",
                weights=tuple([0.0] * len(ACTIVITY_DIMS)),
                baseline=0.0,
                noise_sd=-0.1,
            )

    def test_rate_is_linear_in_intensity(self):
        event = event_by_name("cpu_clk_unhalted")
        activity = np.asarray(CASSANDRA_UPDATE_HEAVY.activity_vector())
        low = event.rate(activity, 1.0)
        high = event.rate(activity, 2.0)
        assert high - event.baseline == pytest.approx(2 * (low - event.baseline))


class TestHPCSampler:
    def test_full_catalogue_by_default(self):
        assert len(HPCSampler().monitored) == 60

    def test_multiplexing_flag(self):
        assert HPCSampler().multiplexed
        few = HPCSampler(events=list(TABLE1_EVENTS[:HARDWARE_REGISTERS]))
        assert not few.multiplexed

    def test_sample_returns_all_events(self):
        readings = HPCSampler().sample(WORKLOAD, 10.0)
        assert set(readings) == set(event_names())

    def test_counts_scale_with_window(self):
        sampler = HPCSampler(events=["cpu_clk_unhalted"], seed=1)
        short = sampler.sample(WORKLOAD, 1.0)["cpu_clk_unhalted"]
        long = sampler.sample(WORKLOAD, 100.0)["cpu_clk_unhalted"]
        assert long.count > short.count * 50

    def test_rate_normalization(self):
        reading = CounterReading(event="x", count=500.0, duration_seconds=10.0)
        assert reading.rate == pytest.approx(50.0)

    def test_rate_of_bad_window_rejected(self):
        reading = CounterReading(event="x", count=1.0, duration_seconds=0.0)
        with pytest.raises(ValueError):
            _ = reading.rate

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            HPCSampler().sample(WORKLOAD, 0.0)

    def test_interference_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            HPCSampler().sample(WORKLOAD, 10.0, interference=1.0)

    def test_interference_inflates_memory_events(self):
        clean_sampler = HPCSampler(events=["l2_ads"], seed=5)
        noisy_sampler = HPCSampler(events=["l2_ads"], seed=5)
        clean = np.mean(
            [clean_sampler.sample(WORKLOAD, 10.0)["l2_ads"].rate for _ in range(20)]
        )
        noisy = np.mean(
            [
                noisy_sampler.sample(WORKLOAD, 10.0, interference=0.2)["l2_ads"].rate
                for _ in range(20)
            ]
        )
        assert noisy > clean * 1.05

    def test_empty_event_list_rejected(self):
        with pytest.raises(ValueError):
            HPCSampler(events=[])

    def test_deterministic_given_seed(self):
        a = HPCSampler(seed=9).sample(WORKLOAD, 10.0)
        b = HPCSampler(seed=9).sample(WORKLOAD, 10.0)
        assert a["l2_st"].count == b["l2_st"].count


class TestXentop:
    def test_metric_names(self):
        sample = XentopSampler().sample(WORKLOAD)
        assert set(sample) == set(XENTOP_METRICS)

    def test_cpu_capped_at_100(self):
        sample = XentopSampler(capacity_units=0.5).sample(WORKLOAD)
        assert sample["xentop_cpu_percent"] <= 102.0  # cap + 2% noise

    def test_io_scales_with_volume(self):
        sampler = XentopSampler(seed=2)
        small = sampler.sample(Workload(volume=50.0, mix=RUBIS_BIDDING))
        big = sampler.sample(Workload(volume=500.0, mix=RUBIS_BIDDING))
        assert big["xentop_vbd_io_ops"] > small["xentop_vbd_io_ops"] * 5

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            XentopSampler(capacity_units=0.0)


class TestMonitor:
    def test_collect_merges_sources(self):
        metrics = Monitor().collect(WORKLOAD)
        assert set(metrics) == set(event_names()) | set(XENTOP_METRICS)

    def test_metric_names_order_stable(self):
        monitor = Monitor()
        assert monitor.metric_names() == monitor.metric_names()

    def test_default_window_is_papers_ten_seconds(self):
        # The ~10 s adaptation time is the signature collection window.
        assert Monitor().window_seconds == 10.0

    def test_normalization_makes_windows_comparable(self):
        # Sec. 3.3: values are normalized by sampling time, so a 5 s
        # and a 50 s collection yield comparable signatures.
        monitor = Monitor(hpc=HPCSampler(seed=3))
        short = monitor.collect(WORKLOAD, window_seconds=5.0)
        long = monitor.collect(WORKLOAD, window_seconds=50.0)
        assert short["cpu_clk_unhalted"] == pytest.approx(
            long["cpu_clk_unhalted"], rel=0.15
        )

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            Monitor(window_seconds=0.0)
