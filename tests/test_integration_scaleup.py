"""Integration tests: the scale-up case studies (Figs. 9-10, Sec. 4.2)."""

import pytest

from repro.experiments.scaling import REUSE_WINDOW, run_scaleup_comparison


@pytest.fixture(scope="module")
def hotmail():
    return run_scaleup_comparison("hotmail")


@pytest.fixture(scope="module")
def messenger():
    return run_scaleup_comparison("messenger")


class TestHotmailScaleUp:
    def test_savings_in_paper_band(self, hotmail):
        # Paper: "savings of roughly 45%" (we accept 30-50%).
        saving = hotmail.costs["dejavu"].saving_fraction
        assert 0.30 <= saving <= 0.50

    def test_qos_stays_above_slo(self, hotmail):
        # "QoS is always above the target" apart from profiling blips.
        assert hotmail.slo["dejavu"].violation_fraction < 0.02

    def test_large_suffices_most_of_the_time(self, hotmail):
        # "the smaller instance was capable of accommodating the load
        # most of the time."
        reuse_hours = (REUSE_WINDOW[1] - REUSE_WINDOW[0]) / 3600.0
        assert hotmail.xl_hours < reuse_hours / 2

    def test_xl_deployed_at_peaks(self, hotmail):
        assert hotmail.xl_hours > 0


class TestMessengerScaleUp:
    def test_savings_in_paper_band(self, messenger):
        # Paper: "about 35%" (we accept 18-45% — the synthetic Messenger
        # busy plateau is wider, see EXPERIMENTS.md).
        saving = messenger.costs["dejavu"].saving_fraction
        assert 0.18 <= saving <= 0.45

    def test_qos_stays_above_slo(self, messenger):
        assert messenger.slo["dejavu"].violation_fraction < 0.02


class TestScaleUpVersusScaleOut:
    def test_hotmail_saves_more_than_messenger_when_scaling_up(
        self, hotmail, messenger
    ):
        # Paper ordering: 45% (HotMail) > 35% (Messenger).
        assert (
            hotmail.costs["dejavu"].saving_fraction
            > messenger.costs["dejavu"].saving_fraction
        )

    def test_scaleup_saves_less_than_scaleout(self, hotmail):
        # Sec. 4.5: "savings are higher (50-60% vs. 35-45%) when scaling
        # out vs. scaling up because of the finer granularity of
        # possible resource allocations."
        from repro.experiments.scaling import run_scaleout_comparison

        out = run_scaleout_comparison("hotmail")
        assert (
            out.costs["dejavu"].saving_fraction
            > hotmail.costs["dejavu"].saving_fraction
        )
