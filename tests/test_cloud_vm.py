"""Unit tests for the VM lifecycle."""

import pytest

from repro.cloud.instance_types import LARGE
from repro.cloud.vm import VirtualMachine, VMState


def make_vm() -> VirtualMachine:
    return VirtualMachine(itype=LARGE)


class TestLifecycle:
    def test_starts_stopped(self):
        assert make_vm().state is VMState.STOPPED

    def test_precreated_start_warms(self):
        vm = make_vm()
        vm.start(now=100.0, pre_created=True)
        assert vm.state is VMState.WARMING
        assert vm.ready_at == 100.0 + vm.warmup_seconds

    def test_cold_start_boots(self):
        vm = make_vm()
        vm.start(now=100.0, pre_created=False)
        assert vm.state is VMState.BOOTING
        assert vm.ready_at == 100.0 + vm.boot_seconds

    def test_boot_is_longer_than_warmup(self):
        vm = make_vm()
        assert vm.boot_seconds > vm.warmup_seconds

    def test_double_start_rejected(self):
        vm = make_vm()
        vm.start(now=0.0)
        with pytest.raises(RuntimeError):
            vm.start(now=1.0)

    def test_tick_promotes_after_delay(self):
        vm = make_vm()
        vm.start(now=0.0)
        vm.tick(now=vm.warmup_seconds - 0.1)
        assert vm.state is VMState.WARMING
        vm.tick(now=vm.warmup_seconds)
        assert vm.state is VMState.RUNNING

    def test_stop_from_running(self):
        vm = make_vm()
        vm.start(now=0.0)
        vm.tick(now=100.0)
        vm.stop()
        assert vm.state is VMState.STOPPED

    def test_stop_resets_ready_at(self):
        vm = make_vm()
        vm.start(now=0.0)
        vm.stop()
        assert vm.ready_at == 0.0

    def test_restart_after_stop(self):
        vm = make_vm()
        vm.start(now=0.0)
        vm.stop()
        vm.start(now=50.0)
        assert vm.state is VMState.WARMING


class TestBillingAndServing:
    def test_stopped_is_not_billable(self):
        assert not make_vm().is_billable

    def test_warming_is_billable_but_not_serving(self):
        vm = make_vm()
        vm.start(now=0.0)
        assert vm.is_billable
        assert not vm.is_serving

    def test_running_serves(self):
        vm = make_vm()
        vm.start(now=0.0)
        vm.tick(now=1000.0)
        assert vm.is_serving

    def test_unique_ids(self):
        assert make_vm().vm_id != make_vm().vm_id
