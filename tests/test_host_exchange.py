"""Property tests for the cross-shard demand exchange.

The invariant under test: for *any* placement, shard cut and lane
count, stepping every shard's :class:`ShardHostView` concurrently
(thread-mode exchange — the same ``DemandExchange.exchange`` code the
spawn workers run) produces exactly the per-host demand totals, theft
vectors and host statistics of a single-process :class:`HostMap` fed
the same workloads.  Exact equality, not allclose: every worker runs
the identical vectorized arithmetic over the identical global vector.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.sim.exchange import (
    DemandExchange,
    ExchangeSpec,
    ShardHostView,
    make_thread_exchange,
)
from repro.sim.hosts import HostMap, SimHost, allocation_demand
from repro.sim.shard import partition_lanes
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload

STEP_SECONDS = 300.0


def make_workloads(rng, n_lanes):
    return [
        Workload(
            volume=float(rng.uniform(0.0, 900.0)),
            mix=CASSANDRA_UPDATE_HEAVY,
        )
        for _ in range(n_lanes)
    ]


def random_coupling(rng):
    """A random fleet/host geometry with real contention on most draws."""
    n_lanes = int(rng.integers(3, 17))
    shards = int(rng.integers(2, min(n_lanes, 5) + 1))
    n_hosts = int(rng.integers(1, 4))
    hosts = [
        SimHost(capacity_units=float(rng.uniform(1.0, 6.0)))
        for _ in range(n_hosts)
    ]
    placement = [
        None if rng.random() < 0.15 else int(rng.integers(0, n_hosts))
        for _ in range(n_lanes)
    ]
    return n_lanes, shards, hosts, placement


def run_sharded_steps(
    n_lanes, shards, hosts, placement, steps_workloads, demand_fn=None,
    capacities=None,
):
    """Step every shard's view concurrently; thefts in shard order."""
    ranges = partition_lanes(n_lanes, shards)
    handles = make_thread_exchange(n_lanes, ranges, ExchangeSpec())
    views = [
        ShardHostView(
            HostMap(hosts, placement, demand_fn=demand_fn),
            lanes.start,
            lanes.stop,
            handle,
        )
        for lanes, handle in zip(ranges, handles)
    ]

    def drive(view, lanes):
        thefts = []
        for step, workloads in enumerate(steps_workloads):
            caps = (
                None
                if capacities is None
                else capacities[lanes.start : lanes.stop]
            )
            # apply_step returns a slice view of the map's in-place
            # theft vector; copy before the next step overwrites it.
            thefts.append(
                view.apply_step(
                    STEP_SECONDS * step,
                    workloads[lanes.start : lanes.stop],
                    caps,
                ).copy()
            )
        return thefts

    with ThreadPoolExecutor(max_workers=shards) as pool:
        futures = [
            pool.submit(drive, view, lanes)
            for view, lanes in zip(views, ranges)
        ]
        results = [future.result() for future in futures]
    return results, views


class TestExchangeMatchesSingleProcess:
    @pytest.mark.parametrize("seed", range(8))
    def test_thefts_totals_and_stats_match(self, seed):
        rng = np.random.default_rng(seed)
        n_lanes, shards, hosts, placement = random_coupling(rng)
        steps_workloads = [make_workloads(rng, n_lanes) for _ in range(4)]

        reference = HostMap(hosts, placement)
        expected = [
            reference.apply_step(STEP_SECONDS * step, workloads).copy()
            for step, workloads in enumerate(steps_workloads)
        ]

        results, views = run_sharded_steps(
            n_lanes, shards, hosts, placement, steps_workloads
        )

        # Theft vectors, re-assembled from the shard slices, are
        # bit-identical to the single-process pass at every step.
        for step in range(len(steps_workloads)):
            merged = np.concatenate(
                [results[shard][step] for shard in range(shards)]
            )
            np.testing.assert_array_equal(
                merged, expected[step], strict=True
            )

        # Every worker's global map accumulated the same statistics.
        for view in views:
            assert view.mean_theft == reference.mean_theft
            assert view.peak_theft == reference.peak_theft
            assert view.overload_fraction == reference.overload_fraction

        # Per-host totals from the shared block equal np.bincount over
        # the single-process demand vector (the block still holds the
        # final step's exchanged demands).
        block = views[0].exchange_handle.block
        ref_demands = reference._demands(
            STEP_SECONDS * (len(steps_workloads) - 1),
            steps_workloads[-1],
            None,
        )
        np.testing.assert_array_equal(block, ref_demands, strict=True)
        host_index = reference._host_index
        placed = host_index >= 0
        np.testing.assert_array_equal(
            np.bincount(
                host_index[placed],
                weights=block[placed],
                minlength=len(hosts),
            ),
            np.bincount(
                host_index[placed],
                weights=ref_demands[placed],
                minlength=len(hosts),
            ),
            strict=True,
        )

    @pytest.mark.parametrize("seed", (11, 12, 13))
    def test_allocation_footprint_also_matches(self, seed):
        rng = np.random.default_rng(seed)
        n_lanes, shards, hosts, placement = random_coupling(rng)
        steps_workloads = [make_workloads(rng, n_lanes) for _ in range(3)]
        capacities = [float(rng.uniform(0.5, 8.0)) for _ in range(n_lanes)]

        reference = HostMap(hosts, placement, demand_fn=allocation_demand)
        expected = [
            reference.apply_step(
                STEP_SECONDS * step, workloads, capacities
            ).copy()
            for step, workloads in enumerate(steps_workloads)
        ]

        results, _views = run_sharded_steps(
            n_lanes,
            shards,
            hosts,
            placement,
            steps_workloads,
            demand_fn=allocation_demand,
            capacities=capacities,
        )
        for step in range(len(steps_workloads)):
            merged = np.concatenate(
                [results[shard][step] for shard in range(shards)]
            )
            np.testing.assert_array_equal(
                merged, expected[step], strict=True
            )


class TestValidation:
    def test_spec_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="period"):
            ExchangeSpec(exchange_every=0)
        with pytest.raises(ValueError, match="timeout"):
            ExchangeSpec(barrier_timeout_seconds=0.0)

    def test_handle_rejects_bad_slice(self):
        block = np.zeros(4)
        with pytest.raises(ValueError, match="slice"):
            DemandExchange(4, 2, 2, barrier=None, block=block)
        with pytest.raises(ValueError, match="slice"):
            DemandExchange(4, 0, 5, barrier=None, block=block)

    def test_handle_needs_exactly_one_backing(self):
        with pytest.raises(ValueError, match="exactly one"):
            DemandExchange(4, 0, 2, barrier=None)
        with pytest.raises(ValueError, match="exactly one"):
            DemandExchange(
                4, 0, 2, barrier=None, shm_name="x", block=np.zeros(4)
            )

    def test_handle_rejects_mis_sized_block(self):
        with pytest.raises(ValueError, match="block"):
            DemandExchange(4, 0, 2, barrier=None, block=np.zeros(3))

    def test_exchange_rejects_wrong_slice_length(self):
        handles = make_thread_exchange(
            4, partition_lanes(4, 2), ExchangeSpec()
        )
        with pytest.raises(ValueError, match="local demands"):
            handles[0].exchange(np.zeros(3))

    def test_thread_handle_refuses_to_pickle(self):
        import pickle

        handles = make_thread_exchange(
            4, partition_lanes(4, 2), ExchangeSpec()
        )
        with pytest.raises(TypeError, match="process boundary"):
            pickle.dumps(handles[0])

    def test_view_rejects_custom_demand_fn(self):
        handles = make_thread_exchange(
            4, partition_lanes(4, 2), ExchangeSpec()
        )
        custom = HostMap(
            [SimHost(4.0)],
            [0, 0, 0, 0],
            demand_fn=lambda workload: workload.demand_units,
        )
        with pytest.raises(ValueError, match="demand_fn"):
            ShardHostView(custom, 0, 2, handles[0])

    def test_view_rejects_mismatched_exchange_geometry(self):
        handles = make_thread_exchange(
            4, partition_lanes(4, 2), ExchangeSpec()
        )
        host_map = HostMap([SimHost(4.0)], [0, 0, 0, 0])
        with pytest.raises(ValueError, match="exchange covers"):
            ShardHostView(host_map, 0, 3, handles[0])

    def test_view_feed_is_the_global_lanes_feed(self):
        handles = make_thread_exchange(
            4, partition_lanes(4, 2), ExchangeSpec()
        )
        host_map = HostMap([SimHost(4.0)], [0, 0, 0, 0])
        view = ShardHostView(host_map, 2, 4, handles[1])
        assert view.n_lanes == 2
        assert view.feed(0) is host_map.feed(2)
        assert view.feed(1) is host_map.feed(3)
        with pytest.raises(IndexError):
            view.feed(2)
