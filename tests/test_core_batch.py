"""Unit tests for the batched control plane (repro.core.batch).

The contract under test: every batched computation — classifier
``predict_batch``, ``BatchClassifier.classify_matrix``, repository
``lookup_batch`` — is *bit-identical* (or, for statistics,
accounting-identical) to the equivalent sequence of scalar calls.
"""

import numpy as np
import pytest

from repro.cloud.provider import Allocation
from repro.core.batch import BatchClassifier
from repro.core.classifiers import (
    C45DecisionTree,
    GaussianNaiveBayes,
    NearestCentroid,
    predict_matrix,
    predict_rows,
)
from repro.core.repository import AllocationRepository
from repro.experiments.setup import build_scaleout_setup

CLASSIFIERS = (C45DecisionTree, GaussianNaiveBayes, NearestCentroid)


def training_set(seed: int = 0, n: int = 90, d: int = 6, k: int = 4):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(k, d))
    y = rng.integers(0, k, n)
    X = centers[y] + rng.normal(size=(n, d))
    return X, y


class TestPredictBatch:
    @pytest.mark.parametrize("factory", CLASSIFIERS)
    def test_batch_matches_scalar_bitwise(self, factory):
        X, y = training_set()
        clf = factory().fit(X, y)
        rng = np.random.default_rng(7)
        Q = rng.normal(scale=5.0, size=(200, X.shape[1]))
        batch = clf.predict_batch(Q)
        for i, q in enumerate(Q):
            p = clf.predict(q)
            assert p.label == int(batch.labels[i])
            assert p.confidence == float(batch.confidences[i])

    @pytest.mark.parametrize("factory", CLASSIFIERS)
    def test_predict_rows_fallback_matches(self, factory):
        X, y = training_set(seed=3)
        clf = factory().fit(X, y)
        Q = np.random.default_rng(11).normal(size=(40, X.shape[1]))
        fast = predict_matrix(clf, Q)
        slow = predict_rows(clf, Q)
        np.testing.assert_array_equal(fast.labels, slow.labels)
        np.testing.assert_array_equal(fast.confidences, slow.confidences)

    def test_predict_batch_rejects_non_matrix(self):
        X, y = training_set()
        clf = C45DecisionTree().fit(X, y)
        with pytest.raises(ValueError, match="2-D"):
            clf.predict_batch(X[0])

    def test_predict_batch_before_fit_rejected(self):
        for factory in CLASSIFIERS:
            with pytest.raises(RuntimeError):
                factory().predict_batch(np.zeros((2, 3)))


def trained_manager(classifier_factory=None, seed: int = 0):
    kwargs = {}
    if classifier_factory is not None:
        kwargs["classifier_factory"] = classifier_factory
    setup = build_scaleout_setup(seed=seed, **kwargs)
    setup.manager.learn(setup.trace.hourly_workloads(day=0))
    return setup


class TestBatchClassifier:
    @pytest.mark.parametrize("factory", CLASSIFIERS)
    def test_matches_scalar_classify_bitwise(self, factory, monkeypatch):
        setup = trained_manager(classifier_factory=factory)
        manager = setup.manager
        batch = manager.batch_classifier()
        names = manager.profiler.monitor.metric_names()
        # Freeze the signature collections so the scalar path classifies
        # exactly the rows we feed the batched path.
        collections = [
            manager.profiler.collect_metrics(setup.trace.workload_at(h * 3600.0))
            for h in range(24)
        ]
        X = np.array(
            [[metrics[m] for m in manager.schema.metric_names] for metrics in collections]
        )
        result = batch.classify_matrix(X)
        assert result.n_samples == 24
        for i, metrics in enumerate(collections):
            monkeypatch.setattr(
                manager.profiler, "collect_metrics", lambda _w, m=metrics: m
            )
            label, certainty, xz = manager.classify(
                setup.trace.workload_at(i * 3600.0)
            )
            assert label == int(result.labels[i])
            assert certainty == float(result.certainties[i])
            np.testing.assert_array_equal(xz, result.signatures_z[i], strict=True)

    def test_novelty_floors_certainty(self):
        setup = trained_manager()
        manager = setup.manager
        batch = manager.batch_classifier()
        # A signature absurdly far from every centroid must be flagged
        # novel: certainty capped at the novelty level.
        X = np.full((1, manager.schema.n_metrics), 1e9)
        result = batch.classify_matrix(X)
        assert float(result.certainties[0]) <= manager.config.novelty_certainty

    def test_shape_validation(self):
        setup = trained_manager()
        batch = setup.manager.batch_classifier()
        with pytest.raises(ValueError, match="schema"):
            batch.classify_matrix(np.zeros((3, 2)))

    def test_thresholds_precomputed_per_class(self):
        setup = trained_manager()
        manager = setup.manager
        batch = manager.batch_classifier()
        n = manager.clustering.n_classes
        assert batch.novelty_thresholds.shape == (n,)
        assert (batch.novelty_thresholds > 0).all()


class TestManagerBatchState:
    def test_group_key_shared_across_adoptees(self):
        from repro.core.repository import AllocationRepository

        shared = AllocationRepository()
        leader = build_scaleout_setup(repository=shared, seed=0)
        follower = build_scaleout_setup(repository=shared, seed=1)
        leader.manager.learn(leader.trace.hourly_workloads(day=0))
        follower.manager.adopt_trained_state(leader.manager)
        assert leader.manager.batch_group_key() is not None
        assert leader.manager.batch_group_key() == follower.manager.batch_group_key()

    def test_group_key_changes_after_relearn(self):
        setup = trained_manager()
        manager = setup.manager
        before = manager.batch_group_key()
        manager.relearn(now=0.0, workloads=setup.trace.hourly_workloads(day=1))
        assert manager.batch_group_key() != before

    def test_batch_classifier_cache_invalidated_by_relearn(self):
        setup = trained_manager()
        manager = setup.manager
        first = manager.batch_classifier()
        assert manager.batch_classifier() is first  # cached
        manager.relearn(now=0.0, workloads=setup.trace.hourly_workloads(day=1))
        assert manager.batch_classifier() is not first

    def test_untrained_manager_has_no_batch_state(self):
        setup = build_scaleout_setup(seed=0)
        assert setup.manager.batch_group_key() is None
        assert not setup.manager.supports_batched_adapt
        with pytest.raises(RuntimeError, match="before learning"):
            setup.manager.batch_classifier()


class TestLookupBatch:
    def entry(self, count: int) -> Allocation:
        return Allocation(count=count)

    def test_stats_match_equivalent_scalar_lookups(self):
        labels = [0, 1, 0, 2, 1, 0, 5]
        scalar = AllocationRepository()
        batched = AllocationRepository()
        for repo in (scalar, batched):
            repo.store(0, 0, self.entry(2))
            repo.store(1, 0, self.entry(3))
        scalar_entries = [scalar.lookup(label, 0) for label in labels]
        batch_entries = batched.lookup_batch(labels, 0)
        assert scalar_entries == batch_entries
        assert scalar.stats.hits == batched.stats.hits == 5
        assert scalar.stats.misses == batched.stats.misses == 2

    def test_empty_batch(self):
        repo = AllocationRepository()
        assert repo.lookup_batch([]) == []
        assert repo.stats.hits == repo.stats.misses == 0

    def test_band_keyed(self):
        repo = AllocationRepository()
        repo.store(0, 1, self.entry(4))
        assert repo.lookup_batch([0], 0) == [None]
        assert repo.lookup_batch([0], 1)[0].allocation.count == 4
