"""The profiling economy: queue invariants, admission market, relearn gating.

Three layers of the PR's trust posture live here:

* **Property-based queue invariants** — randomized arrival sequences
  against both admission policies must conserve requests
  (accepted + rejected + shed + evicted == total), keep FIFO order
  within a priority class, never rewind time, never book more
  slot-time than exists, and keep ``max_depth``/``pending_at``
  consistent.
* **Equal-priority equivalence** — ``queue_policy="priority"`` with
  all-equal priorities and watermarks disabled must reproduce the fifo
  queue's grants and statistics exactly (the unit-level face of the
  fleet-level pin in ``tests/test_fleet_equivalence.py``).
* **Relearn blocking** — a relearn burst stuck behind a saturated
  queue keeps the *old* model serving until the burst drains, and the
  new model's availability tracks the burst's (possibly revised)
  queue residency.

Plus the small-fix regression: rejected and evicted grants carry an
explicit outcome and never leak into ``mean_wait_seconds``-style
aggregates.
"""

import random

import pytest

from repro.experiments.setup import build_scaleout_setup
from repro.sim.engine import StepContext
from repro.sim.fleet import (
    GRANT_OUTCOMES,
    PRIORITY_ADAPTATION,
    PRIORITY_ESCALATION,
    PRIORITY_RELEARN,
    PRIORITY_ROUTINE,
    ProfilingQueue,
)

SERVICE = 10.0

PRIORITIES = (
    PRIORITY_ROUTINE,
    PRIORITY_RELEARN,
    PRIORITY_ADAPTATION,
    PRIORITY_ESCALATION,
)

#: Queue shapes the randomized suite sweeps: (policy, kwargs).
QUEUE_SHAPES = [
    ("fifo", {}),
    ("fifo", {"max_pending": 0}),
    ("fifo", {"max_pending": 2}),
    ("priority", {}),
    ("priority", {"max_pending": 2}),
    ("priority", {"max_pending": 3, "high_watermark": 3, "low_watermark": 1}),
    ("priority", {"slots": 3, "max_pending": 4}),
]


def random_arrivals(seed: int, n: int = 120):
    """A reproducible arrival sequence: (t, priority, bounded) triples.

    Times advance by bursty random increments (many zero-gap arrivals,
    the adaptation-wave shape), priorities cover all four classes, and
    a small fraction of requests are unbounded relearn-style bursts.
    """
    rng = random.Random(seed)
    t = 0.0
    arrivals = []
    for _ in range(n):
        t += rng.choice([0.0, 0.0, 1.0, 5.0, 30.0, 300.0])
        priority = rng.choice(PRIORITIES)
        bounded = rng.random() > 0.1
        arrivals.append((t, priority, bounded))
    return arrivals


def run_arrivals(queue: ProfilingQueue, arrivals) -> None:
    for t, priority, bounded in arrivals:
        queue.request(t, bounded=bounded, priority=priority, kind="adapt")


class TestQueueInvariants:
    @pytest.mark.parametrize("policy,kwargs", QUEUE_SHAPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_conservation(self, policy, kwargs, seed):
        """accepted + rejected + shed + evicted == total requests."""
        shape = {"slots": 1, **kwargs}
        queue = ProfilingQueue(
            service_seconds=SERVICE, queue_policy=policy, **shape
        )
        arrivals = random_arrivals(seed)
        run_arrivals(queue, arrivals)
        counts = queue.outcome_counts()
        assert set(counts) == set(GRANT_OUTCOMES)
        assert sum(counts.values()) == queue.total_requests == len(arrivals)
        assert counts["rejected"] == queue.rejected
        assert counts["evicted"] == queue.evicted
        assert counts["shed"] == queue.shed
        assert counts["accepted"] == len(queue.accepted_grants)

    @pytest.mark.parametrize("policy,kwargs", QUEUE_SHAPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_fifo_within_a_priority_class(self, policy, kwargs, seed):
        """Among accepted grants of one priority, starts follow arrival."""
        shape = {"slots": 1, **kwargs}
        queue = ProfilingQueue(
            service_seconds=SERVICE, queue_policy=policy, **shape
        )
        run_arrivals(queue, random_arrivals(seed))
        by_class: dict[int, list[float]] = {}
        for grant in queue.grants:
            if grant.accepted:
                by_class.setdefault(grant.priority, []).append(grant.start_at)
        for priority, starts in by_class.items():
            assert starts == sorted(starts), f"class {priority} reordered"

    @pytest.mark.parametrize("policy,kwargs", QUEUE_SHAPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_time_never_rewinds(self, policy, kwargs, seed):
        shape = {"slots": 1, **kwargs}
        queue = ProfilingQueue(
            service_seconds=SERVICE, queue_policy=policy, **shape
        )
        arrivals = random_arrivals(seed)
        run_arrivals(queue, arrivals)
        last_t = arrivals[-1][0]
        with pytest.raises(ValueError, match="rewind"):
            queue.request(last_t - 1.0)
        # Accepted schedules respect causality: no run starts before it
        # was requested, and every run lasts exactly one service time.
        for grant in queue.accepted_grants:
            assert grant.start_at >= grant.requested_at
            assert grant.finish_at == grant.start_at + SERVICE

    @pytest.mark.parametrize("policy,kwargs", QUEUE_SHAPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_busy_seconds_fits_the_horizon(self, policy, kwargs, seed):
        """Booked slot-time never exceeds slots x the schedule span."""
        shape = {"slots": 1, **kwargs}
        queue = ProfilingQueue(
            service_seconds=SERVICE, queue_policy=policy, **shape
        )
        run_arrivals(queue, random_arrivals(seed))
        accepted = queue.accepted_grants
        assert queue.busy_seconds == pytest.approx(len(accepted) * SERVICE)
        if accepted:
            span = max(g.finish_at for g in accepted) - min(
                g.start_at for g in accepted
            )
            assert queue.busy_seconds <= shape["slots"] * span + 1e-9
            horizon = max(g.finish_at for g in accepted)
            if horizon > 0:
                assert 0.0 <= queue.utilization(horizon) <= 1.0 + 1e-12

    @pytest.mark.parametrize("policy,kwargs", QUEUE_SHAPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_depth_accounting_is_consistent(self, policy, kwargs, seed):
        """pending_at <= depth_at <= max_depth, sampled at every arrival."""
        shape = {"slots": 1, **kwargs}
        queue = ProfilingQueue(
            service_seconds=SERVICE, queue_policy=policy, **shape
        )
        for t, priority, bounded in random_arrivals(seed):
            queue.request(t, bounded=bounded, priority=priority)
            pending = queue.pending_at(t)
            depth = queue.depth_at(t)
            assert 0 <= pending <= depth
            assert depth <= queue.max_depth
            if (
                bounded
                and queue.max_pending is not None
                and policy == "priority"
            ):
                # Bounded admissions never stack past the cliff (only
                # unbounded bursts may have pushed pending beyond it).
                assert pending <= queue.max_pending + sum(
                    1
                    for g in queue.grants
                    if g.accepted and g.priority == PRIORITY_RELEARN
                ) + sum(1 for g in queue.grants if not g.accepted)


class TestEqualPriorityEquivalence:
    """Priority policy with flat priorities == fifo, grant for grant."""

    @pytest.mark.parametrize("max_pending", [None, 0, 1, 3])
    @pytest.mark.parametrize("slots", [1, 2])
    @pytest.mark.parametrize("seed", range(4))
    def test_flat_priority_matches_fifo(self, max_pending, slots, seed):
        fifo = ProfilingQueue(
            slots=slots, service_seconds=SERVICE, max_pending=max_pending
        )
        market = ProfilingQueue(
            slots=slots,
            service_seconds=SERVICE,
            max_pending=max_pending,
            queue_policy="priority",
        )
        for t, _priority, bounded in random_arrivals(seed, n=150):
            a = fifo.request(t, bounded=bounded, priority=PRIORITY_ADAPTATION)
            b = market.request(
                t, bounded=bounded, priority=PRIORITY_ADAPTATION
            )
            assert a.outcome == b.outcome
            assert a.requested_at == b.requested_at
            assert a.start_at == b.start_at
            assert a.finish_at == b.finish_at
        # Pending grants still hold projections; those must match the
        # fifo schedule too (fifo committed them at request time).
        for a, b in zip(fifo.grants, market.grants):
            assert (a.requested_at, a.start_at, a.finish_at, a.outcome) == (
                b.requested_at,
                b.start_at,
                b.finish_at,
                b.outcome,
            )
        assert fifo.rejected == market.rejected
        assert market.evicted == 0 and market.shed == 0
        assert fifo.max_depth == market.max_depth
        assert fifo.busy_seconds == market.busy_seconds
        assert fifo.mean_wait_seconds == market.mean_wait_seconds
        assert fifo.max_wait_seconds == market.max_wait_seconds


class TestAdmissionMarket:
    """The mempool semantics: outbidding, shedding, evicting."""

    def test_escalation_overtakes_queued_routine_work(self):
        queue = ProfilingQueue(
            slots=1, service_seconds=SERVICE, queue_policy="priority"
        )
        queue.request(0.0, priority=PRIORITY_ADAPTATION)  # in service
        routine = queue.request(0.0, priority=PRIORITY_ROUTINE)
        assert routine.start_at == SERVICE  # next in line when issued
        probe = queue.request(1.0, priority=PRIORITY_ESCALATION)
        # The probe jumps the routine work; the routine grant's already
        # issued schedule moved, which the revised flag records.
        assert probe.start_at == SERVICE
        assert routine.start_at == 2 * SERVICE
        assert routine.revised and not probe.revised

    def test_watermark_sheds_until_backlog_drains(self):
        queue = ProfilingQueue(
            slots=1,
            service_seconds=SERVICE,
            queue_policy="priority",
            high_watermark=2,
            low_watermark=0,
        )
        queue.request(0.0, priority=PRIORITY_ADAPTATION)  # occupies slot
        queue.request(0.0, priority=PRIORITY_ADAPTATION)
        queue.request(0.0, priority=PRIORITY_ADAPTATION)  # backlog hits 2
        shed = queue.request(1.0, priority=PRIORITY_ROUTINE)
        assert shed.outcome == "shed"
        # High-priority work is never shed, even above the watermark.
        kept = queue.request(2.0, priority=PRIORITY_ESCALATION)
        assert kept.accepted
        # Once the backlog drains to the low watermark, routine traffic
        # is admitted again (hysteresis, not a one-shot gate).
        late = queue.request(100.0, priority=PRIORITY_ROUTINE)
        assert late.accepted
        assert queue.shed == 1

    def test_eviction_at_the_cliff_prefers_lowest_youngest(self):
        queue = ProfilingQueue(
            slots=1,
            service_seconds=SERVICE,
            max_pending=2,
            queue_policy="priority",
        )
        queue.request(0.0, priority=PRIORITY_ADAPTATION)  # in service
        old_routine = queue.request(0.0, priority=PRIORITY_ROUTINE)
        young_routine = queue.request(1.0, priority=PRIORITY_ROUTINE)
        bidder = queue.request(2.0, priority=PRIORITY_ADAPTATION)
        # The cliff was full; the youngest lowest-priority entry goes.
        assert young_routine.outcome == "evicted"
        assert old_routine.accepted and bidder.accepted
        # The next bidder takes the remaining routine entry...
        second_bidder = queue.request(3.0, priority=PRIORITY_ADAPTATION)
        assert second_bidder.accepted
        assert old_routine.outcome == "evicted"
        # ...and once the backlog is all equal-priority work, an equal
        # bid cannot evict anyone: it is rejected at the cliff.
        loser = queue.request(4.0, priority=PRIORITY_ADAPTATION)
        assert loser.outcome == "rejected"
        assert queue.evicted == 2 and queue.rejected == 1

    def test_unbounded_bursts_bypass_every_control(self):
        queue = ProfilingQueue(
            slots=1,
            service_seconds=SERVICE,
            max_pending=0,
            queue_policy="priority",
            high_watermark=1,
            low_watermark=0,
        )
        queue.request(0.0, priority=PRIORITY_ADAPTATION)
        burst = [
            queue.request(0.0, bounded=False, priority=PRIORITY_RELEARN)
            for _ in range(4)
        ]
        assert all(g.accepted for g in burst)
        assert queue.rejected == 0 and queue.shed == 0


class TestOutcomeExclusion:
    """Satellite fix: non-accepted grants stay out of the aggregates."""

    def test_rejected_grants_excluded_from_mean_wait(self):
        queue = ProfilingQueue(
            slots=1, service_seconds=SERVICE, max_pending=1
        )
        first = queue.request(0.0)
        waited = queue.request(0.0)
        rejected = queue.request(0.0)
        assert rejected.outcome == "rejected"
        assert not rejected.accepted
        assert first.wait_seconds == 0.0 and waited.wait_seconds == SERVICE
        # (0 + 10) / 2, not (0 + 10 + 0) / 3.
        assert queue.mean_wait_seconds == pytest.approx(SERVICE / 2)
        assert queue.max_wait_seconds == SERVICE

    def test_evicted_grants_excluded_from_wait_and_utilization(self):
        queue = ProfilingQueue(
            slots=1,
            service_seconds=SERVICE,
            max_pending=1,
            queue_policy="priority",
        )
        queue.request(0.0, priority=PRIORITY_ADAPTATION)
        victim = queue.request(0.0, priority=PRIORITY_ROUTINE)
        queue.request(1.0, priority=PRIORITY_ESCALATION)
        assert victim.outcome == "evicted"
        assert victim.wait_seconds == 0.0
        # (0 + 9) / 2 over the two accepted grants only.
        assert queue.mean_wait_seconds == pytest.approx((0.0 + 9.0) / 2)
        # Utilization counts two real runs, not the evicted booking.
        assert queue.utilization(2 * SERVICE) == pytest.approx(1.0)
        assert queue.busy_seconds == pytest.approx(2 * SERVICE)


class TestProfilerOutages:
    """Fault-injection semantics: revocation, brownouts, conservation."""

    def test_full_outage_revokes_in_flight_grants(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        queue.attach_faults(((5.0, 100.0, None),))
        running = queue.request(0.0)  # in service, finishes at 10
        waiting = queue.request(0.0)  # scheduled 10-20
        queue.advance_to(5.0)
        assert running.outcome == "revoked"
        assert waiting.outcome == "revoked"
        assert queue.revoked == 2
        # Revoked runs are killed mid-collection: nothing is billed,
        # and the schedule collapses back to the request time.
        assert queue.busy_seconds == 0.0
        assert running.finish_at == running.requested_at
        assert running.revised
        # Slots stay dark until the window ends.
        late = queue.request(50.0)
        assert late.accepted and late.start_at == 100.0

    def test_finished_and_unissued_work_survives_the_outage(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        queue.attach_faults(((30.0, 60.0, None),))
        done = queue.request(0.0)  # finishes at 10, before the window
        queue.advance_to(30.0)
        assert done.outcome == "accepted"
        assert queue.revoked == 0
        assert queue.busy_seconds == pytest.approx(SERVICE)

    def test_partial_brownout_delays_without_killing(self):
        queue = ProfilingQueue(slots=2, service_seconds=SERVICE)
        queue.attach_faults(((5.0, 200.0, 1),))
        running = queue.request(0.0)  # slot 0, finishes at 10
        queue.advance_to(5.0)
        # The idle slot browns out; the in-flight run survives.
        assert running.outcome == "accepted"
        assert queue.revoked == 0
        # Capacity halves: simultaneous arrivals serialize on the one
        # surviving slot instead of fanning out over two.
        first = queue.request(20.0)
        second = queue.request(20.0)
        assert sorted((first.start_at, second.start_at)) == [20.0, 30.0]
        # Once the window closes, both slots serve again.
        a = queue.request(300.0)
        b = queue.request(300.0)
        assert a.start_at == b.start_at == 300.0

    def test_conservation_holds_with_revocations(self):
        """accepted + rejected + shed + evicted + revoked == total."""
        total_revoked = 0
        for policy, kwargs in QUEUE_SHAPES:
            for seed in range(4):
                queue = ProfilingQueue(
                    service_seconds=SERVICE,
                    queue_policy=policy,
                    **{"slots": 1, **kwargs},
                )
                arrivals = random_arrivals(seed)
                horizon = arrivals[-1][0]
                # Outage windows interleaved with the arrival sequence.
                queue.attach_faults(
                    (
                        (horizon * 0.25, horizon * 0.3, None),
                        (horizon * 0.6, horizon * 0.7, None),
                    )
                )
                for t, priority, bounded in arrivals:
                    queue.advance_to(t)
                    queue.request(
                        t, bounded=bounded, priority=priority, kind="adapt"
                    )
                counts = queue.outcome_counts()
                assert set(counts) == set(GRANT_OUTCOMES)
                assert sum(counts.values()) == queue.total_requests
                assert counts["revoked"] == queue.revoked
                assert counts["accepted"] == len(queue.accepted_grants)
                assert queue.busy_seconds >= 0.0
                total_revoked += queue.revoked
        # Honesty: the windows actually killed in-flight work somewhere
        # in the sweep, or the revoked leg of the invariant is vacuous.
        assert total_revoked > 0

    def test_attach_validates_windows(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        with pytest.raises(ValueError, match="positive length"):
            queue.attach_faults(((10.0, 10.0, None),))
        with pytest.raises(ValueError, match="slot"):
            queue.attach_faults(((10.0, 20.0, 0),))


class TestManagerOutageRecovery:
    """Bounded retry-with-backoff, then the last-known-good allocation.

    The manager side of the profiler-outage contract: every revoked
    grant is either retried to completion or abandoned with an explicit
    outcome counter — a pending deployment never silently wedges.
    """

    BACKOFF = 600.0

    def outage_manager(self, queue, retries=2, fallback=True):
        from repro.core.manager import DejaVuConfig

        setup = build_scaleout_setup(
            seed=0,
            config=DejaVuConfig(
                profiling_retry_limit=retries,
                profiling_retry_backoff_seconds=self.BACKOFF,
                degraded_fallback=fallback,
            ),
        )
        setup.manager.learn(setup.trace.hourly_workloads(day=0))
        setup.manager.attach_profiling_queue(queue)
        return setup

    def revoked_pending(self, setup, queue):
        """Drive one adaptation into the queue, then kill its grant."""
        queue.request(0.0)  # foreign traffic: the manager's run waits
        setup.manager.on_step(ctx_at(setup, 0.0))
        pending = setup.manager.pending_deployment
        assert pending is not None and pending.grant.outcome == "accepted"
        queue.advance_to(5.0)  # the outage window opens
        assert pending.grant.outcome == "revoked"
        return pending

    def test_retry_lands_the_deployment_after_backoff(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        queue.attach_faults(((5.0, 50.0, None),))
        setup = self.outage_manager(queue)
        self.revoked_pending(setup, queue)

        # First poll arms the backoff gate; polling early changes nothing.
        setup.manager.poll_pending_deployment(10.0)
        assert setup.manager.pending_deployment.retry_at == 10.0 + self.BACKOFF
        setup.manager.poll_pending_deployment(100.0)
        assert setup.manager.profiling_retries == 0

        # Once the backoff elapses the retry re-charges the queue (the
        # outage is over by then) and the decision deploys.
        setup.manager.poll_pending_deployment(10.0 + self.BACKOFF)
        assert setup.manager.profiling_retries == 1
        pending = setup.manager.pending_deployment
        assert pending is not None and pending.grant.outcome == "accepted"
        setup.manager.poll_pending_deployment(pending.apply_at + 1.0)
        assert setup.manager.pending_deployment is None
        assert setup.manager.degraded_adaptations == 0
        assert setup.manager.revoked_adaptations == 0

    def test_exhausted_retries_fall_back_to_last_known_good(self):
        # A rolling blackout revokes each retry in turn until the
        # budget runs out, then the manager serves the allocation the
        # decision already resolved (the degraded mode) — every revoked
        # grant ends retried-to-revocation or deployed, never wedged.
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        queue.attach_faults(
            ((5.0, 700.0, None), (695.0, 1400.0, None), (1905.0, 2600.0, None))
        )
        setup = self.outage_manager(queue, retries=2)
        self.revoked_pending(setup, queue)

        setup.manager.poll_pending_deployment(10.0)  # arms the backoff
        # Retry 1 at t=620: charged behind the dark slots (start 700),
        # then killed by the second window before it can run.
        setup.manager.poll_pending_deployment(620.0)
        assert setup.manager.profiling_retries == 1
        queue.advance_to(695.0)
        assert setup.manager.pending_deployment.grant.outcome == "revoked"
        # Backoff doubles: poll at 700 arms retry_at = 700 + 1200.
        setup.manager.poll_pending_deployment(700.0)
        setup.manager.poll_pending_deployment(1900.0)  # retry 2
        assert setup.manager.profiling_retries == 2
        queue.advance_to(1905.0)  # the third window kills it too
        setup.manager.poll_pending_deployment(1910.0)
        # Budget exhausted: explicit degraded outcome, no deadlock.
        assert setup.manager.pending_deployment is None
        assert setup.manager.degraded_adaptations == 1
        assert setup.manager.revoked_adaptations == 0
        # Conservation on the queue side covers the whole exchange.
        counts = queue.outcome_counts()
        assert sum(counts.values()) == queue.total_requests
        assert counts["revoked"] == 4  # foreign + original + 2 retries

    def test_without_fallback_the_adaptation_is_abandoned(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        queue.attach_faults(((5.0, 10 * self.BACKOFF, None),))
        setup = self.outage_manager(queue, retries=0, fallback=False)
        self.revoked_pending(setup, queue)
        setup.manager.poll_pending_deployment(10.0)
        # Zero retries, no fallback: the explicit abandonment counter.
        assert setup.manager.pending_deployment is None
        assert setup.manager.revoked_adaptations == 1
        assert setup.manager.degraded_adaptations == 0


# ----------------------------------------------------------------------
# Relearn blocking: the model waits for its own sweep
# ----------------------------------------------------------------------


def trained_setup(seed: int = 0):
    setup = build_scaleout_setup(seed=seed)
    setup.manager.learn(setup.trace.hourly_workloads(day=0))
    return setup


def ctx_at(setup, t: float) -> StepContext:
    return StepContext(
        t=t,
        workload=setup.trace.workload_at(t),
        hour=int(t // 3600),
        day=int(t // 86400),
    )


class TestRelearnBlocking:
    def test_saturated_queue_keeps_the_old_model_serving(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        setup = trained_setup()
        setup.manager.attach_profiling_queue(queue)
        # Saturate the single slot with foreign traffic: the relearn
        # burst stacks behind 50 s of other lanes' work.
        for _ in range(5):
            queue.request(0.0)
        old_classifier = setup.manager.classifier
        old_repository = setup.manager.repository

        day1 = setup.trace.hourly_workloads(day=1)
        report = setup.manager.relearn(now=0.0, workloads=day1)
        assert report is not None
        assert setup.manager.relearn_count == 1
        # The new model exists but is gated behind its queued sweep:
        # the old classifier and repository keep serving.
        assert setup.manager.relearn_pending
        assert setup.manager.classifier is old_classifier
        assert setup.manager.repository is old_repository
        burst = [g for g in queue.grants if g.kind == "relearn"]
        assert len(burst) == len(day1) * setup.manager.config.trials_per_workload
        available = max(g.finish_at for g in burst)
        assert available == 50.0 + len(burst) * SERVICE
        assert setup.manager.model_available_at == available

        # Polling before the burst drains must not deploy the model.
        setup.manager.poll_pending_deployment(available - 1.0)
        assert setup.manager.relearn_pending
        assert setup.manager.classifier is old_classifier

        # Once the clock passes the burst's finish, the swap happens.
        setup.manager.poll_pending_deployment(available)
        assert not setup.manager.relearn_pending
        assert setup.manager.classifier is not old_classifier
        assert setup.manager.repository is not old_repository

    def test_bounded_false_sweep_stacks_past_the_cliff_and_still_gates(self):
        # max_pending=0 would reject any online arrival, but the
        # scheduled sweep is bounded=False: every trial is admitted and
        # the model still waits for the full burst.
        queue = ProfilingQueue(
            slots=1, service_seconds=SERVICE, max_pending=0
        )
        setup = trained_setup()
        setup.manager.attach_profiling_queue(queue)
        queue.request(0.0)  # slot busy: the burst has to queue
        day1 = setup.trace.hourly_workloads(day=1)
        setup.manager.relearn(now=0.0, workloads=day1)
        assert queue.rejected == 0
        assert setup.manager.relearn_pending
        assert setup.manager.model_available_at > 0.0

    def test_engine_step_deploys_the_staged_model(self):
        queue = ProfilingQueue(slots=1, service_seconds=SERVICE)
        setup = trained_setup()
        setup.manager.attach_profiling_queue(queue)
        queue.request(0.0)
        old_classifier = setup.manager.classifier
        setup.manager.relearn(
            now=0.0, workloads=setup.trace.hourly_workloads(day=1)
        )
        available = setup.manager.model_available_at
        # A step before availability serves old; one after swaps in.
        setup.manager.on_step(ctx_at(setup, min(300.0, available - 1.0)))
        assert setup.manager.classifier is old_classifier
        setup.manager.on_step(ctx_at(setup, available + 300.0))
        assert setup.manager.classifier is not old_classifier
        assert not setup.manager.relearn_pending

    def test_priority_revisions_push_availability_later(self):
        # Under the market a relearn burst bids low: a later escalation
        # probe overtakes its unstarted remainder, and the staged
        # model's availability moves with the revised projections.
        queue = ProfilingQueue(
            slots=1, service_seconds=SERVICE, queue_policy="priority"
        )
        setup = trained_setup()
        setup.manager.attach_profiling_queue(queue)
        queue.request(0.0, priority=PRIORITY_ADAPTATION)  # slot busy
        setup.manager.relearn(
            now=0.0, workloads=setup.trace.hourly_workloads(day=1)
        )
        before = setup.manager.model_available_at
        queue.request(1.0, priority=PRIORITY_ESCALATION)
        setup.manager.poll_pending_deployment(2.0)
        assert setup.manager.model_available_at == before + SERVICE
        assert setup.manager.relearn_pending

    def test_without_queue_the_relearn_installs_immediately(self):
        setup = trained_setup()
        old_classifier = setup.manager.classifier
        setup.manager.relearn(
            now=0.0, workloads=setup.trace.hourly_workloads(day=1)
        )
        assert not setup.manager.relearn_pending
        assert setup.manager.classifier is not old_classifier
