"""Equivalence: a 1-lane fleet reproduces the legacy engine bit-for-bit,
and the batched control plane reproduces the scalar fleet path.

``SimulationEngine.run`` is a thin wrapper over a one-lane
:class:`FleetEngine`.  These tests pin the refactor down: for every
controller family (DejaVu, Autopilot, RightScale, Overprovision) the
wrapper and a directly-driven one-lane fleet must produce series that
are bit-identical to a reference loop implementing the seed engine's
semantics (per-step: workload -> controller -> observe -> record).

The batched-control-plane tests pin the other axis: a mixed 8-lane
fleet carrying all four controller families produces **bit-identical
FleetResult blocks and adaptation events** under ``batched=True`` and
``batched=False`` — including under a contended profiling queue, whose
per-lane request sequence both paths reproduce.  (The one documented
divergence: when interference-escalation probes contend with *other
lanes'* signature collections in the same wave, the two paths produce
different — equally valid — FIFO schedules; the host-coupled studies
exercise that regime, this test pins the exact-equivalence one.)

Each run gets a freshly built setup so no provider/service/RNG state
leaks between the compared executions; determinism comes from the
seeded substrates.
"""

import numpy as np
import pytest

from repro.baselines.autopilot import Autopilot
from repro.baselines.overprovision import Overprovision
from repro.baselines.rightscale import RightScale
from repro.experiments.setup import build_scaleout_setup, observe_scaleout
from repro.sim.clock import HOUR, SimClock
from repro.sim.engine import SimulationEngine, StepContext
from repro.sim.fleet import FleetEngine, FleetLane
from repro.sim.result import SimulationResult

DURATION = 3 * HOUR
STEP = 600.0


def reference_run(
    workload_fn, controller, observe_fn, step_seconds, label, duration
) -> SimulationResult:
    """The seed repo's SimulationEngine.run loop, verbatim semantics."""
    clock = SimClock(0.0)
    result = SimulationResult(label=label)
    end = 0.0 + duration
    while clock.now < end:
        workload = workload_fn(clock.now)
        ctx = StepContext(
            t=clock.now, workload=workload, hour=clock.hour, day=clock.day
        )
        controller.on_step(ctx)
        for name, value in observe_fn(ctx).items():
            result.record(name, clock.now, value)
        clock.advance(step_seconds)
    return result


def build_policy(policy: str):
    """A fresh (workload_fn, controller, observe_fn) triple per call."""
    setup = build_scaleout_setup(seed=0)
    learning_day = setup.trace.hourly_workloads(day=0)
    if policy == "dejavu":
        setup.manager.learn(learning_day)
        controller = setup.manager
    elif policy == "autopilot":
        controller = Autopilot(setup.production, setup.tuner)
        controller.learn_schedule(learning_day)
    elif policy == "rightscale":
        controller = RightScale(setup.production, seed=7)
    elif policy == "overprovision":
        controller = Overprovision(setup.production)
    else:
        raise ValueError(policy)
    return setup.trace.workload_at, controller, observe_scaleout(setup)


def assert_bit_identical(a: SimulationResult, b: SimulationResult) -> None:
    assert set(a.series) == set(b.series)
    assert a.series, "equivalence over an empty result proves nothing"
    for name in a.series:
        sa, sb = a.series[name], b.series[name]
        np.testing.assert_array_equal(sa.times, sb.times, strict=True)
        np.testing.assert_array_equal(sa.values, sb.values, strict=True)


POLICIES = ("dejavu", "autopilot", "rightscale", "overprovision")


@pytest.mark.parametrize("policy", POLICIES)
def test_wrapper_matches_reference(policy):
    workload_fn, controller, observe_fn = build_policy(policy)
    expected = reference_run(
        workload_fn, controller, observe_fn, STEP, policy, DURATION
    )

    workload_fn, controller, observe_fn = build_policy(policy)
    engine = SimulationEngine(
        workload_fn, controller, observe_fn, step_seconds=STEP, label=policy
    )
    actual = engine.run(DURATION)

    assert actual.label == policy
    assert_bit_identical(expected, actual)


@pytest.mark.parametrize("policy", POLICIES)
def test_one_lane_fleet_matches_reference(policy):
    workload_fn, controller, observe_fn = build_policy(policy)
    expected = reference_run(
        workload_fn, controller, observe_fn, STEP, policy, DURATION
    )

    workload_fn, controller, observe_fn = build_policy(policy)
    fleet = FleetEngine(
        [FleetLane(workload_fn, controller, observe_fn, label=policy)],
        step_seconds=STEP,
    )
    actual = fleet.run(DURATION).lane_result(0)

    assert_bit_identical(expected, actual)


# ----------------------------------------------------------------------
# Batched control plane vs scalar fleet path (the tentpole's pin)
# ----------------------------------------------------------------------


def build_mixed_fleet(profiling_slots: int | None, queue_policy: str = "fifo"):
    """An 8-lane mixed fleet exercising all four controller families.

    Lane layout: DejaVu leaders for each service family, DejaVu
    adoptees sharing their trained models (the batched groups), and the
    three baselines.  Rebuilt from scratch per call so batched and
    scalar runs start from identical state.  ``queue_policy`` selects
    the shared queue's admission discipline (every request this fleet
    issues bids at the same priority class, so the two policies are in
    the equivalence regime).
    """
    from repro.core.repository import AllocationRepository
    from repro.experiments.setup import (
        build_scaleup_setup,
        fleet_observer_scaleout,
        fleet_observer_scaleup,
        observe_scaleup,
    )
    from repro.sim.fleet import ProfilingQueue

    out_repo = AllocationRepository()
    up_repo = AllocationRepository()
    out_setups = [
        build_scaleout_setup(
            repository=out_repo, trace_seed=i, seed=2 * i
        )
        for i in range(5)
    ]
    up_setups = [
        build_scaleup_setup(
            repository=up_repo, trace_seed=10 + i, seed=20 + 2 * i
        )
        for i in range(3)
    ]
    out_setups[0].manager.learn(out_setups[0].trace.hourly_workloads(day=0))
    up_setups[0].manager.learn(up_setups[0].trace.hourly_workloads(day=0))
    for setup in out_setups[1:3]:
        setup.manager.adopt_trained_state(out_setups[0].manager)
    up_setups[1].manager.adopt_trained_state(up_setups[0].manager)

    out_observer = fleet_observer_scaleout(out_setups)
    up_observer = fleet_observer_scaleup(up_setups)

    def out_lane(i, controller, label):
        return FleetLane(
            workload_fn=out_setups[i].trace.workload_at,
            controller=controller,
            observe_fn=observe_scaleout(out_setups[i]),
            label=label,
            observe_batch=out_observer,
        )

    def up_lane(i, controller, label):
        return FleetLane(
            workload_fn=up_setups[i].trace.workload_at,
            controller=controller,
            observe_fn=observe_scaleup(up_setups[i]),
            label=label,
            observe_batch=up_observer,
        )

    autopilot = Autopilot(out_setups[3].production, out_setups[3].tuner)
    autopilot.learn_schedule(out_setups[3].trace.hourly_workloads(day=0))
    lanes = [
        out_lane(0, out_setups[0].manager, "dejavu-out-leader"),
        up_lane(0, up_setups[0].manager, "dejavu-up-leader"),
        out_lane(1, out_setups[1].manager, "dejavu-out-a"),
        up_lane(1, up_setups[1].manager, "dejavu-up-a"),
        out_lane(2, out_setups[2].manager, "dejavu-out-b"),
        out_lane(3, autopilot, "autopilot"),
        out_lane(4, RightScale(out_setups[4].production, seed=7), "rightscale"),
        up_lane(2, Overprovision(up_setups[2].production), "overprovision"),
    ]
    queue = (
        ProfilingQueue(
            slots=profiling_slots,
            service_seconds=10.0,
            queue_policy=queue_policy,
        )
        if profiling_slots is not None
        else None
    )
    managers = [
        out_setups[0].manager,
        up_setups[0].manager,
        out_setups[1].manager,
        up_setups[1].manager,
        out_setups[2].manager,
    ]
    providers = [s.provider for s in out_setups] + [s.provider for s in up_setups]
    return lanes, queue, managers, providers


@pytest.mark.parametrize(
    "profiling_slots",
    [None, 1, 5],
    ids=["no-queue", "contended-queue", "uncontended-queue"],
)
def test_batched_path_matches_scalar_path(profiling_slots):
    results = {}
    events = {}
    stats = {}
    meters = {}
    for batched in (True, False):
        lanes, queue, managers, providers = build_mixed_fleet(profiling_slots)
        engine = FleetEngine(
            lanes,
            step_seconds=STEP,
            profiling_queue=queue,
            batched=batched,
        )
        results[batched] = engine.run(6 * HOUR)
        events[batched] = [list(m.adaptation_events) for m in managers]
        stats[batched] = [
            (m.repository.stats.hits, m.repository.stats.misses)
            for m in managers
        ]
        meters[batched] = [
            (p.meter.total_dollars, dict(p.meter.instance_seconds))
            for p in providers
        ]

    batched_result, scalar_result = results[True], results[False]
    assert batched_result.schemas == scalar_result.schemas
    assert batched_result.lane_schemas == scalar_result.lane_schemas
    assert batched_result.series_names() == scalar_result.series_names()
    assert batched_result.n_steps > 0
    for name in batched_result.series_names():
        np.testing.assert_array_equal(
            batched_result.matrix(name), scalar_result.matrix(name),
            strict=True, err_msg=name,
        )
    # Every DejaVu lane made the exact same decisions.
    assert events[True] == events[False]
    assert any(events[True])  # adaptations actually happened
    assert stats[True] == stats[False]
    # Billing too: the fast observation path settles lazily but must
    # charge every lane's meter what per-step settlement would have.
    # Instance-seconds are exact; dollar totals are summed over
    # different settlement segmentations, so they agree to rounding.
    for (b_total, b_seconds), (s_total, s_seconds) in zip(
        meters[True], meters[False]
    ):
        assert b_seconds == s_seconds
        assert b_total == pytest.approx(s_total, rel=1e-12)
    assert any(total > 0 for total, _seconds in meters[True])


def test_batched_is_the_study_default():
    from repro.experiments.multiplexing_study import run_fleet_multiplexing_study

    study = run_fleet_multiplexing_study(n_lanes=2, hours=2.0)
    assert study.batched


def test_overlapped_waves_match_serial_stepping():
    """wave_workers > 1 overlaps independent schema-group waves inside
    a step (signature collection, group classification, observation
    fills run on a thread pool) — but results are joined per step in
    submission order, so the run is bit-identical to serial."""
    results = {}
    events = {}
    stats = {}
    for wave_workers in (0, 4):
        lanes, queue, managers, _providers = build_mixed_fleet(
            profiling_slots=8
        )
        engine = FleetEngine(
            lanes,
            step_seconds=STEP,
            profiling_queue=queue,
            batched=True,
            wave_workers=wave_workers,
        )
        results[wave_workers] = engine.run(6 * HOUR)
        events[wave_workers] = [list(m.adaptation_events) for m in managers]
        stats[wave_workers] = [
            (m.repository.stats.hits, m.repository.stats.misses)
            for m in managers
        ]

    serial, overlapped = results[0], results[4]
    assert overlapped.schemas == serial.schemas
    assert overlapped.lane_schemas == serial.lane_schemas
    assert overlapped.series_names() == serial.series_names()
    assert overlapped.n_steps > 0
    for name in serial.series_names():
        np.testing.assert_array_equal(
            overlapped.matrix(name), serial.matrix(name),
            strict=True, err_msg=name,
        )
    assert events[4] == events[0]
    assert any(events[0])
    assert stats[4] == stats[0]


def test_wave_workers_validated():
    lanes, queue, _managers, _providers = build_mixed_fleet(
        profiling_slots=8
    )
    with pytest.raises(ValueError, match="wave_workers"):
        FleetEngine(
            lanes,
            step_seconds=STEP,
            profiling_queue=queue,
            wave_workers=-1,
        )


# ----------------------------------------------------------------------
# Priority admission in the equivalence regime (the economy's pin)
# ----------------------------------------------------------------------
#
# The profiling economy's contract: with every request bidding the same
# priority class and watermarks disabled, ``queue_policy="priority"``
# degenerates to FIFO *bit-for-bit* — same grants, same stats, same
# fleet series.  This mixed fleet is naturally in that regime: the
# managers charge periodic adaptations at PRIORITY_ADAPTATION, and with
# default configs there are no escalation probes (``adapt_on_violation``
# off), no relearn sweeps, and no routine re-signature stream to bid a
# different class.  The tests below assert that flatness rather than
# assuming it.


@pytest.mark.parametrize("batched", [True, False], ids=["batched", "scalar"])
def test_flat_priority_fleet_matches_fifo_fleet(batched):
    """Scalar/batched engine paths: fifo vs priority, grant-for-grant."""
    from repro.sim.fleet import PRIORITY_ADAPTATION

    results = {}
    events = {}
    queues = {}
    for queue_policy in ("fifo", "priority"):
        lanes, queue, managers, _providers = build_mixed_fleet(
            1, queue_policy=queue_policy
        )
        engine = FleetEngine(
            lanes,
            step_seconds=STEP,
            profiling_queue=queue,
            batched=batched,
        )
        results[queue_policy] = engine.run(6 * HOUR)
        events[queue_policy] = [list(m.adaptation_events) for m in managers]
        queues[queue_policy] = queue

    fifo_q, prio_q = queues["fifo"], queues["priority"]
    # The regime must hold or the equivalence claim is vacuous: every
    # bid at one class, real contention, nothing shed or evicted.
    assert all(g.priority == PRIORITY_ADAPTATION for g in prio_q.grants)
    assert fifo_q.mean_wait_seconds > 0.0
    assert prio_q.evicted == 0 and prio_q.shed == 0

    def grant_tuples(queue):
        return [
            (g.outcome, g.kind, g.requested_at, g.start_at, g.finish_at)
            for g in queue.grants
        ]

    assert grant_tuples(prio_q) == grant_tuples(fifo_q)
    assert prio_q.rejected == fifo_q.rejected
    assert prio_q.max_depth == fifo_q.max_depth
    assert prio_q.busy_seconds == fifo_q.busy_seconds
    assert prio_q.mean_wait_seconds == fifo_q.mean_wait_seconds
    assert prio_q.max_wait_seconds == fifo_q.max_wait_seconds

    fifo_result, prio_result = results["fifo"], results["priority"]
    assert prio_result.series_names() == fifo_result.series_names()
    assert prio_result.n_steps > 0
    for name in fifo_result.series_names():
        np.testing.assert_array_equal(
            prio_result.matrix(name), fifo_result.matrix(name),
            strict=True, err_msg=name,
        )
    assert events["priority"] == events["fifo"]
    assert any(events["fifo"])


@pytest.mark.parametrize("shards", [1, 2], ids=["merged-1", "sharded-2"])
def test_flat_priority_study_matches_fifo_study(shards):
    """Study/sharded path: fifo vs priority on the contended sweep."""
    from repro.experiments.multiplexing_study import run_fleet_multiplexing_study

    studies = {
        queue_policy: run_fleet_multiplexing_study(
            n_lanes=8,
            mix="mixed",
            hours=6.0,
            profiling_slots=1,
            queue_policy=queue_policy,
            shards=shards,
            workers=0,
        )
        for queue_policy in ("fifo", "priority")
    }
    fifo, prio = studies["fifo"], studies["priority"]
    assert fifo.queue_policy == "fifo" and prio.queue_policy == "priority"
    # Honesty guards: contention is real, and nothing in a default
    # config bids outside the flat class (no escalations, no relearns,
    # so nothing to evict or shed).
    assert fifo.mean_queue_wait_seconds > 0.0
    assert fifo.interference_escalations == 0
    assert prio.evicted_profiles == 0 and prio.shed_profiles == 0

    assert prio.n_steps == fifo.n_steps
    assert prio.accepted_profiles == fifo.accepted_profiles
    assert prio.rejected_profiles == fifo.rejected_profiles
    assert prio.deferred_adaptations == fifo.deferred_adaptations
    assert prio.mean_queue_wait_seconds == fifo.mean_queue_wait_seconds
    assert prio.max_queue_wait_seconds == fifo.max_queue_wait_seconds
    assert prio.max_queue_depth == fifo.max_queue_depth
    assert prio.profiler_utilization == fifo.profiler_utilization
    assert prio.violation_fraction == fifo.violation_fraction
    assert prio.fleet_hourly_cost == fifo.fleet_hourly_cost
    assert prio.lane_events == fifo.lane_events
    assert any(prio.lane_events)
    assert prio.result.schemas == fifo.result.schemas
    assert prio.result.n_steps > 0
    for name in fifo.result.series_names():
        np.testing.assert_array_equal(
            prio.result.matrix(name), fifo.result.matrix(name),
            strict=True, err_msg=f"shards={shards}:{name}",
        )


# ----------------------------------------------------------------------
# Host-coupled fleets: placement policies + allocation-aware demand
# ----------------------------------------------------------------------


HOSTED = dict(
    n_lanes=4,
    mix="mixed",
    hours=8.0,
    lane_seed_stride=0,
    seed=0,
    n_hosts=2,
    host_capacity_units=5.0,
    profiling_slots=4,  # uncontended: the exact-equivalence regime
)


@pytest.mark.parametrize(
    "placement", ["round_robin", "block", "first_fit_decreasing", "best_fit"]
)
def test_batched_matches_scalar_under_every_placement(placement):
    """Batched == scalar stays bit-identical with a HostMap and the
    allocation-aware demand footprint, under every placement policy."""
    from repro.experiments.multiplexing_study import run_fleet_multiplexing_study

    results = {
        batched: run_fleet_multiplexing_study(
            placement=placement, batched=batched, **HOSTED
        )
        for batched in (True, False)
    }
    batched, scalar = results[True], results[False]
    assert batched.placement == scalar.placement == placement
    assert batched.host_demand == "allocation"
    # The coupling must actually fire, or this proves nothing.
    assert batched.peak_host_theft > 0.0
    assert batched.result.n_steps > 0
    assert batched.result.schemas == scalar.result.schemas
    for name in batched.result.series_names():
        np.testing.assert_array_equal(
            batched.result.matrix(name), scalar.result.matrix(name),
            strict=True, err_msg=f"{placement}:{name}",
        )
    assert batched.lane_events == scalar.lane_events
    assert any(batched.lane_events)
    assert batched.mean_host_theft == scalar.mean_host_theft
    assert batched.interference_escalations == scalar.interference_escalations


def test_batched_matches_scalar_under_host_faults():
    """The fault subsystem lives below the scalar/batched fork: a
    scripted host death (evacuation, blackout theft, recovery) must
    leave the two paths bit-identical, fault counters included."""
    from repro.experiments.multiplexing_study import run_fleet_multiplexing_study

    # Keep the queue uncontended even when the fault-driven theft makes
    # every lane's adaptation fire interference probes in the same step
    # (4 adapts + 5 probes at the hour mark): exact equivalence is the
    # uncontended regime, and contention ordering is charged per-lane
    # by the scalar path but per-wave by the batched path.
    faulted = dict(
        HOSTED, profiling_slots=12, faults="host:0@25+18,blackout=300"
    )
    results = {
        batched: run_fleet_multiplexing_study(batched=batched, **faulted)
        for batched in (True, False)
    }
    batched, scalar = results[True], results[False]
    # The honesty guards: the host really died and tenants really moved
    # (or were degraded in place), or the equality proves nothing.
    assert scalar.host_failures == 1
    assert scalar.host_recoveries == 1
    assert scalar.evacuations + scalar.unplaced_evacuations > 0
    assert batched.host_failures == scalar.host_failures
    assert batched.host_recoveries == scalar.host_recoveries
    assert batched.evacuations == scalar.evacuations
    assert batched.unplaced_evacuations == scalar.unplaced_evacuations
    assert batched.peak_host_theft == scalar.peak_host_theft
    assert batched.mean_host_theft == scalar.mean_host_theft
    assert batched.violation_fraction == scalar.violation_fraction
    assert batched.result.schemas == scalar.result.schemas
    assert batched.result.n_steps > 0
    for name in batched.result.series_names():
        np.testing.assert_array_equal(
            batched.result.matrix(name), scalar.result.matrix(name),
            strict=True, err_msg=name,
        )
    assert batched.lane_events == scalar.lane_events
    assert any(batched.lane_events)


def test_batched_matches_scalar_under_forecast_placement():
    """The forecast placement estimate is a pure function of the trace,
    resolved before the scalar/batched fork: both paths must pack — and
    therefore run — identically."""
    from repro.experiments.multiplexing_study import run_fleet_multiplexing_study

    results = {
        batched: run_fleet_multiplexing_study(
            placement="first_fit_decreasing",
            placement_demand="forecast",
            batched=batched,
            **HOSTED,
        )
        for batched in (True, False)
    }
    batched, scalar = results[True], results[False]
    assert batched.placement_demand == scalar.placement_demand == "forecast"
    assert batched.result.n_steps > 0
    assert batched.host_hours_on == scalar.host_hours_on > 0.0
    assert batched.mean_hosts_on == scalar.mean_hosts_on
    for name in batched.result.series_names():
        np.testing.assert_array_equal(
            batched.result.matrix(name), scalar.result.matrix(name),
            strict=True, err_msg=name,
        )
    assert batched.lane_events == scalar.lane_events


def test_batched_matches_scalar_under_consolidation():
    """Consolidation drains run below the scalar/batched fork; the
    blackouts they charge must leave the two paths bit-identical.  The
    queue is kept uncontended (see the faults test above): contention
    ordering is charged per-lane by the scalar path but per-wave by the
    batched path, which is the documented, pre-existing divergence
    regime — not a consolidation property."""
    from repro.experiments.multiplexing_study import run_fleet_multiplexing_study
    from repro.sim.placement import MigrationPolicy

    consolidated = dict(HOSTED, profiling_slots=12)
    results = {
        batched: run_fleet_multiplexing_study(
            placement="first_fit_decreasing",
            migration=MigrationPolicy(rebalance_every=4, mode="consolidate"),
            batched=batched,
            **consolidated,
        )
        for batched in (True, False)
    }
    batched, scalar = results[True], results[False]
    # The drains really happened, or the equality proves nothing.
    assert scalar.migrations > 0
    assert batched.migrations == scalar.migrations
    assert batched.host_hours_on == scalar.host_hours_on > 0.0
    assert batched.mean_host_theft == scalar.mean_host_theft
    assert batched.violation_fraction == scalar.violation_fraction
    assert batched.result.schemas == scalar.result.schemas
    assert batched.result.n_steps > 0
    for name in batched.result.series_names():
        np.testing.assert_array_equal(
            batched.result.matrix(name), scalar.result.matrix(name),
            strict=True, err_msg=name,
        )
    assert batched.lane_events == scalar.lane_events
    assert any(batched.lane_events)


class TestLegacyHostBehaviorPinned:
    """PR 2's host coupling, re-expressed through the policy layer.

    ``placement="round_robin"`` + ``host_demand="offered"`` must
    reproduce the pre-placement study (static offered-demand footprints
    on ``HostMap.spread``) exactly: the golden numbers below were
    captured from the PR 4 code immediately before the refactor.
    """

    PINNED = dict(
        n_lanes=4,
        mix="mixed",
        hours=12.0,
        lane_seed_stride=0,
        seed=0,
        n_hosts=2,
        host_capacity_units=5.0,
    )

    def run_offered(self, **overrides):
        from repro.experiments.multiplexing_study import (
            run_fleet_multiplexing_study,
        )

        kwargs = dict(self.PINNED, host_demand="offered", **overrides)
        return run_fleet_multiplexing_study(**kwargs)

    def test_round_robin_offered_reproduces_pr2_dynamics(self):
        study = self.run_offered()
        assert study.placement == "round_robin"
        assert study.mean_host_theft == pytest.approx(
            0.04398515493749479, rel=1e-9
        )
        assert study.peak_host_theft == pytest.approx(
            0.18473429426475763, rel=1e-9
        )
        assert study.host_overload_fraction == pytest.approx(0.375, rel=1e-9)
        assert study.violation_fraction == pytest.approx(
            0.026041666666666668, rel=1e-9
        )
        assert study.interference_escalations == 1

    def test_policy_placements_match_spread_and_pack(self):
        from repro.sim.hosts import HostMap
        from repro.sim.placement import make_policy

        demands = [3.0, 7.0, 2.0, 5.0, 4.0]  # ignored by both policies
        hosts = HostMap.spread(5, 2, 10.0).hosts
        assert (
            tuple(make_policy("round_robin").place(demands, hosts))
            == HostMap.spread(5, 2, 10.0).placement
        )
        packed = HostMap.pack(5, 2, 10.0)
        assert (
            tuple(make_policy("block").place(demands, packed.hosts))
            == packed.placement
        )


def test_wrapper_still_validates_duration():
    workload_fn, controller, observe_fn = build_policy("overprovision")
    engine = SimulationEngine(workload_fn, controller, observe_fn)
    with pytest.raises(ValueError, match="duration"):
        engine.run(0.0)


def test_wrapper_still_validates_step():
    workload_fn, controller, observe_fn = build_policy("overprovision")
    with pytest.raises(ValueError, match="step"):
        SimulationEngine(workload_fn, controller, observe_fn, step_seconds=-1.0)
