"""Equivalence: a 1-lane fleet reproduces the legacy engine bit-for-bit.

``SimulationEngine.run`` is now a thin wrapper over a one-lane
:class:`FleetEngine`.  These tests pin the refactor down: for every
controller family (DejaVu, Autopilot, RightScale, Overprovision) the
wrapper and a directly-driven one-lane fleet must produce series that
are bit-identical to a reference loop implementing the seed engine's
semantics (per-step: workload -> controller -> observe -> record).

Each run gets a freshly built setup so no provider/service/RNG state
leaks between the compared executions; determinism comes from the
seeded substrates.
"""

import numpy as np
import pytest

from repro.baselines.autopilot import Autopilot
from repro.baselines.overprovision import Overprovision
from repro.baselines.rightscale import RightScale
from repro.experiments.setup import build_scaleout_setup, observe_scaleout
from repro.sim.clock import HOUR, SimClock
from repro.sim.engine import SimulationEngine, StepContext
from repro.sim.fleet import FleetEngine, FleetLane
from repro.sim.result import SimulationResult

DURATION = 3 * HOUR
STEP = 600.0


def reference_run(
    workload_fn, controller, observe_fn, step_seconds, label, duration
) -> SimulationResult:
    """The seed repo's SimulationEngine.run loop, verbatim semantics."""
    clock = SimClock(0.0)
    result = SimulationResult(label=label)
    end = 0.0 + duration
    while clock.now < end:
        workload = workload_fn(clock.now)
        ctx = StepContext(
            t=clock.now, workload=workload, hour=clock.hour, day=clock.day
        )
        controller.on_step(ctx)
        for name, value in observe_fn(ctx).items():
            result.record(name, clock.now, value)
        clock.advance(step_seconds)
    return result


def build_policy(policy: str):
    """A fresh (workload_fn, controller, observe_fn) triple per call."""
    setup = build_scaleout_setup(seed=0)
    learning_day = setup.trace.hourly_workloads(day=0)
    if policy == "dejavu":
        setup.manager.learn(learning_day)
        controller = setup.manager
    elif policy == "autopilot":
        controller = Autopilot(setup.production, setup.tuner)
        controller.learn_schedule(learning_day)
    elif policy == "rightscale":
        controller = RightScale(setup.production, seed=7)
    elif policy == "overprovision":
        controller = Overprovision(setup.production)
    else:
        raise ValueError(policy)
    return setup.trace.workload_at, controller, observe_scaleout(setup)


def assert_bit_identical(a: SimulationResult, b: SimulationResult) -> None:
    assert set(a.series) == set(b.series)
    assert a.series, "equivalence over an empty result proves nothing"
    for name in a.series:
        sa, sb = a.series[name], b.series[name]
        np.testing.assert_array_equal(sa.times, sb.times, strict=True)
        np.testing.assert_array_equal(sa.values, sb.values, strict=True)


POLICIES = ("dejavu", "autopilot", "rightscale", "overprovision")


@pytest.mark.parametrize("policy", POLICIES)
def test_wrapper_matches_reference(policy):
    workload_fn, controller, observe_fn = build_policy(policy)
    expected = reference_run(
        workload_fn, controller, observe_fn, STEP, policy, DURATION
    )

    workload_fn, controller, observe_fn = build_policy(policy)
    engine = SimulationEngine(
        workload_fn, controller, observe_fn, step_seconds=STEP, label=policy
    )
    actual = engine.run(DURATION)

    assert actual.label == policy
    assert_bit_identical(expected, actual)


@pytest.mark.parametrize("policy", POLICIES)
def test_one_lane_fleet_matches_reference(policy):
    workload_fn, controller, observe_fn = build_policy(policy)
    expected = reference_run(
        workload_fn, controller, observe_fn, STEP, policy, DURATION
    )

    workload_fn, controller, observe_fn = build_policy(policy)
    fleet = FleetEngine(
        [FleetLane(workload_fn, controller, observe_fn, label=policy)],
        step_seconds=STEP,
    )
    actual = fleet.run(DURATION).lane_result(0)

    assert_bit_identical(expected, actual)


def test_wrapper_still_validates_duration():
    workload_fn, controller, observe_fn = build_policy("overprovision")
    engine = SimulationEngine(workload_fn, controller, observe_fn)
    with pytest.raises(ValueError, match="duration"):
        engine.run(0.0)


def test_wrapper_still_validates_step():
    workload_fn, controller, observe_fn = build_policy("overprovision")
    with pytest.raises(ValueError, match="step"):
        SimulationEngine(workload_fn, controller, observe_fn, step_seconds=-1.0)
