"""Unit tests for signatures, schemas, and standardization."""

import numpy as np
import pytest

from repro.core.signature import SignatureSchema, Standardizer, WorkloadSignature


class TestSignatureSchema:
    def test_vector_extraction_order(self):
        schema = SignatureSchema(metric_names=("b", "a"))
        vector = schema.vector_from({"a": 1.0, "b": 2.0, "c": 3.0})
        assert np.allclose(vector, [2.0, 1.0])

    def test_missing_metric_raises(self):
        schema = SignatureSchema(metric_names=("a", "b"))
        with pytest.raises(KeyError):
            schema.vector_from({"a": 1.0})

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            SignatureSchema(metric_names=())

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ValueError):
            SignatureSchema(metric_names=("a", "a"))

    def test_signature_from(self):
        schema = SignatureSchema(metric_names=("a",))
        signature = schema.signature_from({"a": 5.0})
        assert signature.as_dict() == {"a": 5.0}


class TestWorkloadSignature:
    def test_shape_checked(self):
        schema = SignatureSchema(metric_names=("a", "b"))
        with pytest.raises(ValueError):
            WorkloadSignature(schema=schema, values=np.array([1.0]))

    def test_distance(self):
        schema = SignatureSchema(metric_names=("a", "b"))
        s1 = WorkloadSignature(schema=schema, values=np.array([0.0, 0.0]))
        s2 = WorkloadSignature(schema=schema, values=np.array([3.0, 4.0]))
        assert s1.distance_to(s2) == pytest.approx(5.0)

    def test_distance_requires_same_schema(self):
        s1 = WorkloadSignature(
            schema=SignatureSchema(metric_names=("a",)), values=np.array([1.0])
        )
        s2 = WorkloadSignature(
            schema=SignatureSchema(metric_names=("b",)), values=np.array([1.0])
        )
        with pytest.raises(ValueError):
            s1.distance_to(s2)


class TestStandardizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = Standardizer().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = Standardizer().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones((2, 2)))

    def test_transform_new_points_uses_fit_stats(self):
        X = np.array([[0.0], [10.0]])
        standardizer = Standardizer().fit(X)
        assert standardizer.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)

    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.array([1.0, 2.0]))
