"""Unit tests for session-granularity client emulation."""

import pytest

from repro.workloads.client import ClientPopulation, ClientSession
from repro.workloads.request_mix import RUBIS_BROWSING, SPECWEB_SUPPORT

import numpy as np


class TestClientSession:
    def test_sequence_increments(self):
        session = ClientSession()
        rng = np.random.default_rng(0)
        first = session.next_request(RUBIS_BROWSING, rng)
        second = session.next_request(RUBIS_BROWSING, rng)
        assert (first.sequence, second.sequence) == (1, 2)

    def test_read_only_mix_yields_reads(self):
        session = ClientSession()
        rng = np.random.default_rng(0)
        requests = [session.next_request(RUBIS_BROWSING, rng) for _ in range(50)]
        assert all(r.is_read for r in requests)

    def test_request_keys_are_unique_within_session(self):
        session = ClientSession()
        rng = np.random.default_rng(0)
        keys = {session.next_request(SPECWEB_SUPPORT, rng).key for _ in range(100)}
        assert len(keys) == 100


class TestClientPopulation:
    def test_issue_count(self):
        population = ClientPopulation(10, RUBIS_BROWSING, seed=1)
        assert len(population.issue(55)) == 55

    def test_round_robin_across_sessions(self):
        population = ClientPopulation(5, RUBIS_BROWSING, seed=1)
        requests = population.issue(10)
        session_ids = [r.session_id for r in requests]
        assert session_ids[:5] == session_ids[5:]

    def test_payloads_in_realistic_range(self):
        population = ClientPopulation(3, RUBIS_BROWSING, seed=1)
        for request in population.issue(100):
            assert 200 <= request.payload_bytes < 1400

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(0, RUBIS_BROWSING)

    def test_negative_issue_rejected(self):
        population = ClientPopulation(1, RUBIS_BROWSING)
        with pytest.raises(ValueError):
            population.issue(-1)

    def test_deterministic_given_seed(self):
        a = ClientPopulation(3, SPECWEB_SUPPORT, seed=7).issue(20)
        b = ClientPopulation(3, SPECWEB_SUPPORT, seed=7).issue(20)
        assert [r.payload_bytes for r in a] == [r.payload_bytes for r in b]
