"""Counter-mode telemetry streams: determinism, vectorization, modes.

The load-bearing property is *collection invariance*: a lane's
telemetry noise in counter mode is a pure function of (fleet key, lane
key, salt, pass counter), so the same numbers come out scalar, batched
as a matrix row, or inside another process.  Legacy mode must stay
bit-identical to the pre-stream samplers.
"""

import numpy as np
import pytest

from repro.experiments.multiplexing_study import run_fleet_multiplexing_study
from repro.telemetry.counters import HPCSampler
from repro.telemetry.monitor import Monitor
from repro.telemetry.streams import (
    CounterStream,
    TelemetryStreams,
    counter_normals,
    normals_block,
)
from repro.telemetry.xentop import XentopSampler
from repro.workloads.request_mix import (
    CASSANDRA_UPDATE_HEAVY,
    SPECWEB_SUPPORT,
    Workload,
)

WORKLOADS = [
    Workload(volume=150.0 + 25.0 * i, mix=mix)
    for i, mix in enumerate(
        [CASSANDRA_UPDATE_HEAVY, SPECWEB_SUPPORT, CASSANDRA_UPDATE_HEAVY]
    )
]


def counter_monitor(streams: TelemetryStreams, lane: int) -> Monitor:
    return Monitor(
        hpc=HPCSampler(stream=streams.stream(lane, salt=0)),
        xentop=XentopSampler(
            capacity_units=10.0, stream=streams.stream(lane, salt=1)
        ),
    )


class TestCounterStream:
    def test_same_identity_same_sequence(self):
        streams = TelemetryStreams(42)
        a = streams.stream(3)
        b = streams.stream(3)
        np.testing.assert_array_equal(a.normals(8), b.normals(8), strict=True)
        np.testing.assert_array_equal(a.normals(8), b.normals(8), strict=True)

    def test_lanes_salts_and_passes_are_independent(self):
        streams = TelemetryStreams(42)
        base = streams.stream(0).normals(8)
        assert not np.array_equal(streams.stream(1).normals(8), base)
        assert not np.array_equal(streams.stream(0, salt=1).normals(8), base)
        advanced = streams.stream(0)
        advanced.normals(8)
        assert not np.array_equal(advanced.normals(8), base)

    def test_different_seeds_different_keys(self):
        assert TelemetryStreams(0).key != TelemetryStreams(1).key

    def test_block_matches_scalar_draws(self):
        streams = TelemetryStreams(7)
        scalar = [streams.stream(lane).normals(6) for lane in range(5)]
        block = normals_block([streams.stream(lane) for lane in range(5)], 6)
        np.testing.assert_array_equal(block, np.stack(scalar), strict=True)

    def test_block_bumps_every_counter(self):
        streams = [TelemetryStreams(1).stream(lane) for lane in range(3)]
        normals_block(streams, 4)
        assert [stream.draws for stream in streams] == [1, 1, 1]

    def test_roughly_standard_normal(self):
        block = normals_block([TelemetryStreams(5).stream(0)], 200_000)[0]
        assert abs(block.mean()) < 0.01
        assert abs(block.std() - 1.0) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterStream(1, lane=-1)
        with pytest.raises(ValueError):
            CounterStream(1, lane=0, salt=-1)
        with pytest.raises(ValueError):
            normals_block([], 4)
        with pytest.raises(ValueError):
            counter_normals(
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
                0,
            )


class TestSamplerModes:
    def test_legacy_default_unchanged(self):
        # No stream given: the sampler behaves exactly as before.
        a = HPCSampler(seed=9).sample(WORKLOADS[0], 10.0)
        b = HPCSampler(seed=9).sample(WORKLOADS[0], 10.0)
        assert a["l2_st"].count == b["l2_st"].count
        assert HPCSampler(seed=9).rng_mode == "legacy"
        assert XentopSampler(seed=9).rng_mode == "legacy"

    def test_counter_mode_flag(self):
        streams = TelemetryStreams(0)
        assert HPCSampler(stream=streams.stream(0)).rng_mode == "counter"
        assert XentopSampler(stream=streams.stream(0)).rng_mode == "counter"

    def test_counter_dict_and_vector_paths_agree(self):
        streams = TelemetryStreams(3)
        m1 = counter_monitor(streams, 4)
        m2 = counter_monitor(streams, 4)
        metrics = m1.collect(WORKLOADS[0])
        vector = m2.collect_vector(WORKLOADS[0])
        np.testing.assert_array_equal(
            np.array([metrics[name] for name in m1.metric_names()]),
            vector,
            strict=True,
        )


class TestCollectMatrix:
    def test_counter_matrix_matches_scalar_rows(self):
        streams = TelemetryStreams(11)
        scalar_monitors = [counter_monitor(streams, lane) for lane in range(3)]
        matrix_monitors = [counter_monitor(streams, lane) for lane in range(3)]
        for _pass in range(3):  # alignment survives repeated passes
            scalar = np.stack(
                [
                    monitor.collect_vector(workload)
                    for monitor, workload in zip(scalar_monitors, WORKLOADS)
                ]
            )
            matrix = matrix_monitors[0].collect_matrix(
                WORKLOADS, monitors=matrix_monitors
            )
            np.testing.assert_array_equal(matrix, scalar, strict=True)

    def test_counter_matrix_with_interference(self):
        streams = TelemetryStreams(11)
        scalar_monitors = [counter_monitor(streams, lane) for lane in range(3)]
        matrix_monitors = [counter_monitor(streams, lane) for lane in range(3)]
        interferences = [0.0, 0.2, 0.4]
        scalar = np.stack(
            [
                monitor.collect_vector(workload, interference=interference)
                for monitor, workload, interference in zip(
                    scalar_monitors, WORKLOADS, interferences
                )
            ]
        )
        matrix = matrix_monitors[0].collect_matrix(
            WORKLOADS, interferences, monitors=matrix_monitors
        )
        np.testing.assert_array_equal(matrix, scalar, strict=True)

    def test_legacy_matrix_loops_per_sampler(self):
        scalar_monitors = [
            Monitor(
                hpc=HPCSampler(seed=lane),
                xentop=XentopSampler(capacity_units=10.0, seed=100 + lane),
            )
            for lane in range(3)
        ]
        matrix_monitors = [
            Monitor(
                hpc=HPCSampler(seed=lane),
                xentop=XentopSampler(capacity_units=10.0, seed=100 + lane),
            )
            for lane in range(3)
        ]
        scalar = np.stack(
            [
                monitor.collect_vector(workload)
                for monitor, workload in zip(scalar_monitors, WORKLOADS)
            ]
        )
        matrix = matrix_monitors[0].collect_matrix(
            WORKLOADS, monitors=matrix_monitors
        )
        np.testing.assert_array_equal(matrix, scalar, strict=True)

    def test_incompatible_monitors_rejected(self):
        streams = TelemetryStreams(0)
        counter = counter_monitor(streams, 0)
        legacy = Monitor(
            hpc=HPCSampler(seed=0),
            xentop=XentopSampler(capacity_units=10.0, seed=1),
        )
        with pytest.raises(ValueError, match="compatible"):
            counter.collect_matrix(WORKLOADS[:2], monitors=[counter, legacy])

    def test_shape_validation(self):
        streams = TelemetryStreams(0)
        monitor = counter_monitor(streams, 0)
        with pytest.raises(ValueError, match="workload"):
            monitor.collect_matrix([])
        with pytest.raises(ValueError, match="monitors"):
            monitor.collect_matrix(WORKLOADS, monitors=[monitor])
        with pytest.raises(ValueError, match="interference"):
            monitor.collect_matrix(WORKLOADS[:2], [0.1])


class TestFleetRngEquivalence:
    """The tentpole pins: legacy batched == scalar stays bit-identical,
    and counter scalar == batched == sharded (test_fleet_shard.py pins
    the sharded leg)."""

    def assert_same_fleet(self, a, b):
        assert a.result.series_names() == b.result.series_names()
        assert a.result.n_steps > 0
        for name in a.result.series_names():
            np.testing.assert_array_equal(
                a.result.matrix(name),
                b.result.matrix(name),
                strict=True,
                err_msg=name,
            )
        assert a.lane_events == b.lane_events
        assert any(a.lane_events)

    @pytest.mark.parametrize("rng_mode", ["legacy", "counter"])
    def test_batched_equals_scalar(self, rng_mode):
        batched = run_fleet_multiplexing_study(
            n_lanes=4, hours=6.0, rng_mode=rng_mode, batched=True
        )
        scalar = run_fleet_multiplexing_study(
            n_lanes=4, hours=6.0, rng_mode=rng_mode, batched=False
        )
        assert batched.rng_mode == scalar.rng_mode == rng_mode
        self.assert_same_fleet(batched, scalar)

    def test_counter_is_the_fleet_default(self):
        study = run_fleet_multiplexing_study(n_lanes=2, hours=2.0)
        assert study.rng_mode == "counter"

    def test_stride_zero_lanes_stay_identical_in_counter_mode(self):
        # lane_key = lane * stride, so stride 0 keys every lane's
        # streams identically — the determinism property fleets use.
        study = run_fleet_multiplexing_study(
            n_lanes=2,
            hours=2.0,
            lane_seed_stride=0,
            profiling_slots=2,
            rng_mode="counter",
        )
        matrix = study.result.matrix("latency_ms")
        assert matrix[:, 0].tolist() == matrix[:, 1].tolist()

    def test_unknown_rng_mode_rejected(self):
        with pytest.raises(ValueError, match="rng_mode"):
            run_fleet_multiplexing_study(n_lanes=2, rng_mode="quantum")
