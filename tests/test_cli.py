"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "fig5", "--seed", "3"])
        assert args.command == "run"
        assert args.experiment == "fig5"
        assert args.seed == 3

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fleet_command(self):
        args = build_parser().parse_args(
            ["fleet", "--lanes", "16", "--hours", "12", "--slots", "2"]
        )
        assert args.command == "fleet"
        assert args.lanes == 16
        assert args.hours == 12.0
        assert args.slots == 2
        assert args.seed == 0

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.lanes == 8
        assert args.hours == 24.0
        assert args.step == 300.0
        assert args.mix == "scaleout"
        assert args.hosts == 0
        assert args.host_capacity == 12.0

    def test_fleet_hetero_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--mix", "mixed", "--hosts", "4", "--host-capacity", "9.5"]
        )
        assert args.mix == "mixed"
        assert args.hosts == 4
        assert args.host_capacity == 9.5

    def test_fleet_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--mix", "sideways"])

    def test_fleet_negative_hosts_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--hosts", "-3"])

    def test_fleet_nonpositive_host_capacity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--host-capacity", "0"])

    def test_fleet_placement_flag(self):
        args = build_parser().parse_args(
            ["fleet", "--hosts", "4", "--placement", "best_fit"]
        )
        assert args.placement == "best_fit"
        # No flag means "no explicit choice": main() resolves it to
        # round_robin only when hosts are enabled.
        assert build_parser().parse_args(["fleet"]).placement is None

    def test_fleet_unknown_placement_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--placement", "pile"])

    def test_fleet_migration_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--hosts", "4", "--migration", "--rebalance-every", "6"]
        )
        assert args.migration is True
        assert args.rebalance_every == 6
        defaults = build_parser().parse_args(["fleet"])
        assert defaults.migration is False
        assert defaults.rebalance_every == 12

    def test_scenario_run_command(self):
        args = build_parser().parse_args(
            ["scenario", "run", "a.yaml", "b.yaml", "--workers", "0"]
        )
        assert args.command == "scenario"
        assert args.scenario_command == "run"
        assert args.files == ["a.yaml", "b.yaml"]
        assert args.workers == 0
        assert args.out is None

    def test_scenario_list_command(self):
        args = build_parser().parse_args(["scenario", "list"])
        assert args.scenario_command == "list"
        assert args.dir == "scenarios"

    def test_scenario_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_placement_command_defaults(self):
        args = build_parser().parse_args(["placement"])
        assert args.command == "placement"
        assert args.lanes == 50
        assert args.hosts == 10
        assert args.host_capacity == 30.0
        assert args.mix == "mixed"
        assert "first_fit_decreasing" in args.policies
        assert args.rebalance_every == 12
        assert args.placement_demand == "learning-peak"

    def test_placement_command_policies(self):
        args = build_parser().parse_args(
            ["placement", "--policies", "best_fit+migrate", "round_robin"]
        )
        assert args.policies == ["best_fit+migrate", "round_robin"]

    def test_fleet_energy_flag_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.placement_demand is None
        assert args.consolidate is False
        assert args.power_cost is None


class TestRegistry:
    def test_every_figure_covered(self):
        expected = {
            "fig1", "fig4", "table1", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "fig11", "overhead", "summary",
        }
        assert set(EXPERIMENTS) == expected

    def test_descriptions_nonempty(self):
        for name, (description, fn) in EXPERIMENTS.items():
            assert description
            assert callable(fn)


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fig5(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "classes" in out

    def test_run_overhead(self, capsys):
        assert main(["run", "overhead"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_run_fleet(self, capsys):
        assert main(["fleet", "--lanes", "2", "--hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-service multiplexing study" in out
        assert "hit rate" in out
        assert "profiling queue" in out
        assert "shared hosts" not in out  # dedicated hardware by default

    def test_run_fleet_mixed_on_shared_hosts(self, capsys):
        assert (
            main(
                [
                    "fleet", "--lanes", "2", "--hours", "2",
                    "--mix", "mixed", "--hosts", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(mixed)" in out
        assert "shared hosts (1 x 12 units, round_robin placement" in out
        assert "escalation" in out

    def test_run_fleet_with_placement_policy(self, capsys):
        assert (
            main(
                [
                    "fleet", "--lanes", "2", "--hours", "2",
                    "--mix", "mixed", "--hosts", "1",
                    "--placement", "first_fit_decreasing",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "first_fit_decreasing placement" in out

    def test_fleet_placement_without_hosts_fails_loudly(self, capsys):
        # These flags used to be silently ignored on dedicated
        # hardware; now they fail like the pinned hosts+shards error.
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--placement", "best_fit"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_migration_without_hosts_fails_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--migration"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_consolidate_without_hosts_fails_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--consolidate"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_placement_demand_without_hosts_fails_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--placement-demand", "forecast"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err
        # The default learning-peak is just as host-coupled.
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--placement-demand", "learning-peak"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_power_cost_without_hosts_fails_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--power-cost", "0.12"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_consolidate_reports_energy_axis(self, capsys):
        assert (
            main(
                [
                    "fleet", "--lanes", "4", "--hours", "4",
                    "--mix", "mixed", "--hosts", "2",
                    "--consolidate", "--placement-demand", "forecast",
                    "--power-cost", "0.10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "energy (forecast packing estimates):" in out
        assert "host-hours on" in out
        assert "power" in out

    def test_fleet_energy_row_needs_no_power_cost(self, capsys):
        assert (
            main(
                [
                    "fleet", "--lanes", "2", "--hours", "2",
                    "--mix", "mixed", "--hosts", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "energy (learning-peak packing estimates):" in out
        assert "power" not in out

    def test_run_fleet_hosts_with_shards(self, capsys):
        # Host-coupled sharding end to end: two thread shards exchange
        # demands per step and report fleet-wide host stats.
        assert (
            main(
                [
                    "fleet", "--lanes", "4", "--hours", "2",
                    "--mix", "mixed", "--hosts", "2",
                    "--host-capacity", "6", "--shards", "2",
                    "--workers", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shared hosts" in out
        assert "2 shards" in out

    def test_fleet_workers_without_shards_fails_loudly(self, capsys):
        # --workers sized a pool that a one-shard sweep never built;
        # it was silently ignored instead of failing like --placement
        # without --hosts.
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--workers", "4"])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_fleet_shard_dir_without_shards_fails_loudly(
        self, capsys, tmp_path
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--shard-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_fleet_exchange_every_needs_shards_and_hosts(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--exchange-every", "4"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--shards" in err and "--hosts" in err
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--shards", "2", "--exchange-every", "4"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_host_faults_without_hosts_fail_loudly(self, capsys):
        # A host-death schedule on dedicated hardware has nothing to
        # kill; fail like the other hosts-coupled flags.
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--faults", "host:0@24+12"])
        assert excinfo.value.code == 2
        assert "--hosts" in capsys.readouterr().err

    def test_fleet_fault_knobs_without_schedule_fail_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--fault-retries", "2"])
        assert excinfo.value.code == 2
        assert "--faults" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--no-fault-recovery"])
        assert excinfo.value.code == 2
        assert "--faults" in capsys.readouterr().err

    def test_fleet_bad_fault_schedule_fails_loudly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--hosts", "2", "--faults", "bogus"])
        assert excinfo.value.code == 2
        assert "invalid --faults" in capsys.readouterr().err

    def test_run_fleet_with_host_faults(self, capsys):
        assert (
            main(
                [
                    "fleet", "--lanes", "4", "--hours", "4",
                    "--mix", "mixed", "--hosts", "2",
                    "--host-capacity", "6",
                    "--faults", "host:0@5+6,blackout=300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shared hosts" in out
        assert "faults: 1 host failure(s)" in out

    def test_run_fleet_with_migration(self, capsys):
        assert (
            main(
                [
                    "fleet", "--lanes", "2", "--hours", "2",
                    "--mix", "mixed", "--hosts", "1", "--migration",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shared hosts" in out

    def test_scenario_run_emits_jsonl(self, capsys, tmp_path):
        import json

        doc = tmp_path / "SYN-tiny.yaml"
        doc.write_text(
            "id: SYN-tiny\n"
            "study: fleet\n"
            "fleet:\n"
            "  n_lanes: 2\n"
            "  hours: 2.0\n"
        )
        out_path = tmp_path / "run.jsonl"
        assert (
            main(["scenario", "run", str(doc), "--out", str(out_path)]) == 0
        )
        stdout = capsys.readouterr().out
        records = [json.loads(line) for line in stdout.splitlines()]
        assert len(records) == 1
        record = records[0]
        assert record["scenario"] == "SYN-tiny"
        assert record["policy"] == "dedicated"
        assert record["metrics"]["n_steps"] == 24
        assert out_path.read_text().strip() == stdout.strip()

    def test_scenario_list_prints_library(self, capsys):
        from pathlib import Path

        scenario_dir = Path(__file__).resolve().parent.parent / "scenarios"
        assert main(["scenario", "list", "--dir", str(scenario_dir)]) == 0
        out = capsys.readouterr().out
        assert "SYN-lane-ramp" in out
        assert "RL-diurnal-spikes" in out

    def test_run_placement_study(self, capsys):
        assert (
            main(
                [
                    "placement", "--lanes", "4", "--hours", "2",
                    "--hosts", "2", "--host-capacity", "10",
                    "--policies", "round_robin", "best_fit",
                    "--demand-factors", "0.8", "1.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "placement: 4 lanes on 2 shared hosts" in out
        assert "round_robin" in out and "best_fit" in out
        assert "best:" in out

    def test_run_placement_study_consolidate_forecast(self, capsys):
        assert (
            main(
                [
                    "placement", "--lanes", "4", "--hours", "2",
                    "--hosts", "2", "--host-capacity", "10",
                    "--policies", "first_fit_decreasing+consolidate",
                    "--placement-demand", "forecast",
                    "--demand-factors", "0.8", "1.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "first_fit_decreasing+consolidate" in out
        assert "host-h on" in out
