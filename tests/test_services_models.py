"""Unit tests for the three service models."""

import pytest

from repro.services.base import PerformanceSample, Service
from repro.services.cassandra import CassandraService
from repro.services.rubis import RubisService
from repro.services.slo import LatencySLO, QoSSLO
from repro.services.specweb import SpecWebService
from repro.workloads.request_mix import (
    CASSANDRA_UPDATE_HEAVY,
    RUBIS_BIDDING,
    SPECWEB_SUPPORT,
    Workload,
)


def cassandra_workload(demand: float) -> Workload:
    volume = demand / CASSANDRA_UPDATE_HEAVY.demand_per_client
    return Workload(volume=volume, mix=CASSANDRA_UPDATE_HEAVY)


class TestServiceBase:
    def test_performance_sample_fields(self):
        service = Service("s", LatencySLO(60.0))
        sample = service.performance(cassandra_workload(3.0), 10.0)
        assert sample.latency_ms > 0
        assert 50.0 <= sample.qos_percent <= 99.5
        assert sample.utilization == pytest.approx(0.3)

    def test_slo_metric_selects_latency(self):
        sample = PerformanceSample(latency_ms=42.0, qos_percent=99.0, utilization=0.5)
        assert sample.slo_metric(LatencySLO(60.0)) == 42.0
        assert sample.slo_metric(QoSSLO(95.0)) == 99.0

    def test_slo_met(self):
        service = Service("s", LatencySLO(60.0))
        good = service.performance(cassandra_workload(3.0), 10.0)
        bad = service.performance(cassandra_workload(9.9), 10.0)
        assert service.slo_met(good)
        assert not service.slo_met(bad)


class TestCassandra:
    def test_default_slo_is_60ms(self):
        # Sec. 4.1: "The SLO latency is set to 60 ms."
        assert CassandraService().slo == LatencySLO(60.0)

    def test_repartition_penalty_decays(self):
        service = CassandraService(
            repartition_peak_ms=12.0, repartition_tau_seconds=600.0
        )
        service.notify_allocation_change(now=0.0)
        assert service.repartition_penalty_ms(0.0) == pytest.approx(12.0)
        assert service.repartition_penalty_ms(600.0) == pytest.approx(
            12.0 * 0.367879, rel=1e-3
        )

    def test_no_penalty_before_any_resize(self):
        assert CassandraService().repartition_penalty_ms(100.0) == 0.0

    def test_no_penalty_when_now_unknown(self):
        service = CassandraService()
        service.notify_allocation_change(now=0.0)
        assert service.repartition_penalty_ms(None) == 0.0

    def test_resize_raises_latency_transiently(self):
        service = CassandraService()
        workload = cassandra_workload(5.0)
        steady = service.performance(workload, 10.0).latency_ms
        service.notify_allocation_change(now=1000.0)
        transient = service.performance(workload, 10.0, now=1000.0).latency_ms
        late = service.performance(workload, 10.0, now=1000.0 + 3600.0).latency_ms
        assert transient > steady
        assert late == pytest.approx(steady, rel=1e-3)

    def test_negative_peak_rejected(self):
        with pytest.raises(ValueError):
            CassandraService(repartition_peak_ms=-1.0)

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            CassandraService(repartition_tau_seconds=0.0)


class TestSpecWeb:
    def test_default_slo_is_95_percent(self):
        # SPECweb2009 compliance: 95% of downloads at 0.99 Mbps.
        assert SpecWebService().slo == QoSSLO(95.0)

    def test_qos_high_when_underloaded(self):
        service = SpecWebService()
        workload = Workload(volume=100.0, mix=SPECWEB_SUPPORT)
        sample = service.performance(workload, 10.0)
        assert sample.qos_percent > 99.0

    def test_qos_degrades_past_knee(self):
        service = SpecWebService(qos_knee=0.7, qos_slope=60.0)
        volume = 0.9 * 5.0 / SPECWEB_SUPPORT.demand_per_client
        workload = Workload(volume=volume, mix=SPECWEB_SUPPORT)
        sample = service.performance(workload, 5.0)
        assert sample.qos_percent < 95.0

    def test_qos_floor_is_50(self):
        service = SpecWebService()
        volume = 50.0 / SPECWEB_SUPPORT.demand_per_client
        workload = Workload(volume=volume, mix=SPECWEB_SUPPORT)
        assert service.performance(workload, 1.0).qos_percent == 50.0

    def test_bad_knee_rejected(self):
        with pytest.raises(ValueError):
            SpecWebService(qos_knee=1.5)

    def test_bad_slope_rejected(self):
        with pytest.raises(ValueError):
            SpecWebService(qos_slope=0.0)


class TestRubis:
    def test_has_26_interactions(self):
        # "RUBiS defines 26 client interactions" (Sec. 4).
        assert RubisService.interaction_count() == 26

    def test_default_slo(self):
        assert RubisService().slo == LatencySLO(150.0)

    def test_three_tier_base_latency_is_heavier(self):
        rubis = RubisService()
        cassandra = CassandraService()
        assert rubis.model.base_latency_ms > cassandra.model.base_latency_ms
