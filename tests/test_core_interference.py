"""Unit tests for the interference index (Eq. 2)."""

import pytest

from repro.core.interference import (
    InterferenceEstimator,
    quantize_index,
)
from repro.services.slo import LatencySLO, QoSSLO


class TestQuantize:
    def test_band_zero_below_first_edge(self):
        assert quantize_index(1.0) == 0
        assert quantize_index(1.14) == 0

    def test_band_one(self):
        assert quantize_index(1.2) == 1

    def test_band_two(self):
        assert quantize_index(1.8) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quantize_index(-0.1)


class TestEstimator:
    def test_latency_index_is_prod_over_iso(self):
        estimator = InterferenceEstimator()
        index = estimator.index_from(LatencySLO(60.0), 80.0, 50.0)
        assert index == pytest.approx(1.6)

    def test_qos_index_inverted(self):
        # QoS is higher-is-better: degradation must still push the
        # index above 1.
        estimator = InterferenceEstimator()
        index = estimator.index_from(QoSSLO(95.0), 90.0, 99.0)
        assert index == pytest.approx(1.1)

    def test_ten_percent_hog_lands_in_band_one(self):
        # With the queueing model at a typical operating point, a 10%
        # hog yields an index around 1.3 (DESIGN.md calibration).
        estimator = InterferenceEstimator()
        estimate = estimator.estimate(LatencySLO(60.0), 71.0, 54.0)
        assert estimate.band == 1

    def test_twenty_percent_hog_lands_in_band_two(self):
        estimator = InterferenceEstimator()
        estimate = estimator.estimate(LatencySLO(60.0), 108.0, 54.0)
        assert estimate.band == 2

    def test_assumed_theft_monotone_in_band(self):
        estimator = InterferenceEstimator()
        thefts = [estimator.assumed_theft(b) for b in range(estimator.n_bands)]
        assert thefts == sorted(thefts)
        assert thefts[0] == 0.0

    def test_first_edge(self):
        estimator = InterferenceEstimator(band_edges=(1.15, 1.6))
        assert estimator.first_edge == 1.15

    def test_bad_levels_rejected(self):
        estimator = InterferenceEstimator()
        with pytest.raises(ValueError):
            estimator.index_from(LatencySLO(60.0), 0.0, 50.0)

    def test_band_out_of_range_rejected(self):
        estimator = InterferenceEstimator()
        with pytest.raises(ValueError):
            estimator.assumed_theft(99)

    def test_mismatched_theft_arity_rejected(self):
        with pytest.raises(ValueError):
            InterferenceEstimator(band_edges=(1.2,), band_theft=(0.0, 0.1, 0.2))

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            InterferenceEstimator(band_edges=(1.6, 1.2), band_theft=(0.0, 0.1, 0.2))
