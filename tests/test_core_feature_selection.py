"""Unit tests for CFS feature selection."""

import numpy as np
import pytest

from repro.core.feature_selection import (
    CfsSubsetSelector,
    abs_pearson,
    correlation_ratio,
)


def labeled_dataset(seed: int = 0):
    """3 classes x 30 samples; informative, redundant, and noise features."""
    rng = np.random.default_rng(seed)
    labels = np.repeat([0, 1, 2], 30)
    level = labels.astype(float)
    # Two complementary informative features: `a` tracks the class level
    # and `b` tracks a second, uncorrelated latent factor (class parity),
    # so CFS needs both for full class information.
    informative_a = level * 10.0 + rng.normal(0, 0.5, labels.size)
    informative_b = (labels % 2) * 10.0 + rng.normal(0, 0.5, labels.size)
    redundant = informative_a * 1.01 + rng.normal(0, 0.5, labels.size)
    noise = rng.normal(0, 1.0, labels.size)
    X = np.column_stack([informative_a, informative_b, redundant, noise])
    names = ["informative_a", "informative_b", "redundant", "noise"]
    return X, labels, names


class TestCorrelationRatio:
    def test_perfectly_separated_feature(self):
        labels = np.repeat([0, 1], 10)
        values = labels.astype(float) * 100.0
        assert correlation_ratio(values, labels) == pytest.approx(1.0)

    def test_constant_feature_is_zero(self):
        labels = np.repeat([0, 1], 10)
        assert correlation_ratio(np.ones(20), labels) == 0.0

    def test_adjustment_shrinks_noise(self):
        rng = np.random.default_rng(1)
        labels = np.repeat(np.arange(24), 3)
        values = rng.normal(0, 1, labels.size)
        raw = correlation_ratio(values, labels, adjusted=False)
        adjusted = correlation_ratio(values, labels, adjusted=True)
        # With 24 classes and 3 samples each, the raw eta of pure noise
        # is inflated far above zero; the adjustment removes that.
        assert raw > 0.4
        assert adjusted < raw / 1.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            correlation_ratio(np.ones(5), np.ones(4))


class TestAbsPearson:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert abs_pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_sign_ignored(self):
        x = np.arange(10.0)
        assert abs_pearson(x, -x) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert abs_pearson(np.ones(10), np.arange(10.0)) == 0.0


class TestCfsSubsetSelector:
    def test_selects_informative_features(self):
        X, y, names = labeled_dataset()
        result = CfsSubsetSelector().select(X, y, names)
        assert "informative_a" in result.selected
        assert "informative_b" in result.selected

    def test_rejects_noise(self):
        X, y, names = labeled_dataset()
        result = CfsSubsetSelector().select(X, y, names)
        assert "noise" not in result.selected

    def test_redundancy_penalized(self):
        # The redundant copy of informative_a should lose to the pair of
        # genuinely complementary features.
        X, y, names = labeled_dataset()
        result = CfsSubsetSelector().select(X, y, names)
        assert "redundant" not in result.selected

    def test_max_features_cap(self):
        X, y, names = labeled_dataset()
        result = CfsSubsetSelector(max_features=1).select(X, y, names)
        assert len(result.selected) == 1

    def test_trace_matches_selection(self):
        X, y, names = labeled_dataset()
        result = CfsSubsetSelector().select(X, y, names)
        assert tuple(step[0] for step in result.trace) == result.selected

    def test_merit_positive(self):
        X, y, names = labeled_dataset()
        result = CfsSubsetSelector().select(X, y, names)
        assert result.merit > 0.5

    def test_single_class_rejected(self):
        X = np.ones((10, 2))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            CfsSubsetSelector().select(X, y, ["a", "b"])

    def test_all_noise_rejected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        y = np.repeat([0, 1], 20)
        with pytest.raises(ValueError):
            CfsSubsetSelector(min_class_correlation=0.5).select(
                X, y, ["a", "b", "c"]
            )

    def test_shape_validation(self):
        X, y, names = labeled_dataset()
        with pytest.raises(ValueError):
            CfsSubsetSelector().select(X, y[:-1], names)
        with pytest.raises(ValueError):
            CfsSubsetSelector().select(X, y, names[:-1])

    def test_bad_max_features_rejected(self):
        with pytest.raises(ValueError):
            CfsSubsetSelector(max_features=0)
