"""Unit tests for learned-state persistence."""

import numpy as np
import pytest

from repro.cloud.instance_types import EXTRA_LARGE, LARGE
from repro.cloud.provider import Allocation
from repro.core.classifiers import (
    C45DecisionTree,
    GaussianNaiveBayes,
    NearestCentroid,
)
from repro.core.persistence import (
    allocation_from_dict,
    allocation_to_dict,
    classifier_from_dict,
    classifier_to_dict,
    load_manager_state,
    manager_state_to_dict,
    repository_from_dict,
    repository_to_dict,
    restore_manager_state,
    save_manager_state,
    standardizer_from_dict,
    standardizer_to_dict,
)
from repro.core.repository import AllocationRepository
from repro.core.signature import Standardizer
from repro.experiments.setup import build_scaleout_setup


def three_class_data(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
    X = np.vstack([rng.normal(c, 0.3, size=(20, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 20)
    return X, y


class TestAllocationRoundTrip:
    def test_large(self):
        allocation = Allocation(count=7, itype=LARGE)
        assert allocation_from_dict(allocation_to_dict(allocation)) == allocation

    def test_xlarge(self):
        allocation = Allocation(count=5, itype=EXTRA_LARGE)
        assert allocation_from_dict(allocation_to_dict(allocation)) == allocation


class TestRepositoryRoundTrip:
    def test_entries_survive(self):
        repo = AllocationRepository()
        repo.store(0, 0, Allocation(count=2, itype=LARGE), tuned_at=10.0)
        repo.store(0, 1, Allocation(count=4, itype=LARGE), tuned_at=20.0)
        repo.store(3, 0, Allocation(count=5, itype=EXTRA_LARGE))
        restored = repository_from_dict(repository_to_dict(repo))
        assert len(restored) == 3
        assert restored.lookup(0, 1).allocation.count == 4
        assert restored.lookup(3, 0).allocation.itype is EXTRA_LARGE


class TestStandardizerRoundTrip:
    def test_transform_identical(self):
        X, _ = three_class_data()
        standardizer = Standardizer().fit(X)
        restored = standardizer_from_dict(standardizer_to_dict(standardizer))
        assert np.allclose(standardizer.transform(X), restored.transform(X))

    def test_unfit_rejected(self):
        with pytest.raises(ValueError):
            standardizer_to_dict(Standardizer())


@pytest.mark.parametrize(
    "classifier_cls", [C45DecisionTree, GaussianNaiveBayes, NearestCentroid]
)
class TestClassifierRoundTrip:
    def test_predictions_identical(self, classifier_cls):
        X, y = three_class_data()
        model = classifier_cls().fit(X, y)
        restored = classifier_from_dict(classifier_to_dict(model))
        for x in X[::7]:
            original = model.predict(x)
            copy = restored.predict(x)
            assert original.label == copy.label
            assert original.confidence == pytest.approx(copy.confidence)

    def test_unfit_rejected(self, classifier_cls):
        with pytest.raises(ValueError):
            classifier_to_dict(classifier_cls())


class TestUnknownClassifier:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            classifier_to_dict(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            classifier_from_dict({"kind": "quantum"})


class TestManagerState:
    @pytest.fixture(scope="class")
    def trained(self):
        setup = build_scaleout_setup("messenger")
        setup.manager.learn(setup.trace.hourly_workloads(day=0))
        return setup

    def test_untrained_manager_rejected(self):
        setup = build_scaleout_setup("messenger")
        with pytest.raises(ValueError):
            manager_state_to_dict(setup.manager)

    def test_round_trip_classifies_identically(self, trained):
        state = manager_state_to_dict(trained.manager)
        fresh = build_scaleout_setup("messenger")
        restore_manager_state(fresh.manager, state)
        for hour in (2, 8, 12, 19):
            workload = trained.trace.workload_at(hour * 3600.0)
            label_a, cert_a, _ = trained.manager.classify(workload)
            label_b, cert_b, _ = fresh.manager.classify(workload)
            assert label_a == label_b

    def test_round_trip_preserves_repository(self, trained):
        state = manager_state_to_dict(trained.manager)
        fresh = build_scaleout_setup("messenger")
        restore_manager_state(fresh.manager, state)
        assert len(fresh.manager.repository) == len(trained.manager.repository)

    def test_file_round_trip(self, trained, tmp_path):
        path = tmp_path / "state.json"
        save_manager_state(trained.manager, path)
        fresh = build_scaleout_setup("messenger")
        load_manager_state(fresh.manager, path)
        assert fresh.manager.is_trained
        assert fresh.manager.clustering.n_classes == 4

    def test_version_checked(self, trained):
        state = manager_state_to_dict(trained.manager)
        state["version"] = 999
        fresh = build_scaleout_setup("messenger")
        with pytest.raises(ValueError):
            restore_manager_state(fresh.manager, state)

    def test_restored_manager_adapts(self, trained, tmp_path):
        from repro.sim.engine import StepContext

        path = tmp_path / "state.json"
        save_manager_state(trained.manager, path)
        fresh = build_scaleout_setup("messenger")
        load_manager_state(fresh.manager, path)
        workload = fresh.trace.workload_at(30 * 3600.0)
        ctx = StepContext(t=30 * 3600.0, workload=workload, hour=30, day=1)
        event = fresh.manager.adapt(ctx)
        assert event.cache_hit
