"""Additional property-based tests on the newer components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.instance_types import LARGE
from repro.cloud.provider import Allocation
from repro.core.cost_aware_tuner import KingfisherTuner, TransitionCost
from repro.interference.probe_selection import select_probe_instance
from repro.services.batch import BatchHost, BatchTask, BatchWorkloadAdvisor
from repro.services.cassandra import CassandraService
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload
from repro.workloads.traces import DaySchedule


def cassandra_workload(demand: float) -> Workload:
    return Workload(
        volume=demand / CASSANDRA_UPDATE_HEAVY.demand_per_client,
        mix=CASSANDRA_UPDATE_HEAVY,
    )


class TestProbeSelectionProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        percentile=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_probe_covers_at_least_percentile(self, values, percentile):
        index = select_probe_instance(values, percentile)
        probed = values[index]
        covered = sum(v <= probed for v in values) / len(values)
        assert covered * 100.0 >= percentile - 1e-9

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_hundredth_percentile_is_max(self, values):
        index = select_probe_instance(values, 100.0)
        assert values[index] == max(values)


class TestDayScheduleProperties:
    @given(
        deltas=st.dictionaries(
            keys=st.integers(min_value=1, max_value=3),
            values=st.integers(min_value=-5, max_value=5),
        )
    )
    def test_shifted_stays_valid(self, deltas):
        schedule = DaySchedule(segments=((0, 0), (6, 1), (12, 2), (20, 0)))
        shifted = schedule.shifted(deltas)
        starts = [s for s, _ in shifted.segments]
        assert starts[0] == 0
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        levels = shifted.level_indices()
        assert levels.shape == (24,)

    @given(
        deltas=st.dictionaries(
            keys=st.integers(min_value=1, max_value=3),
            values=st.integers(min_value=-5, max_value=5),
        )
    )
    def test_shift_preserves_level_set_order(self, deltas):
        schedule = DaySchedule(segments=((0, 0), (6, 1), (12, 2), (20, 0)))
        shifted = schedule.shifted(deltas)
        assert [lvl for _s, lvl in shifted.segments] == [0, 1, 2, 0]


class TestBatchProperties:
    @given(
        work=st.floats(min_value=1.0, max_value=1e4),
        interference=st.floats(min_value=0.0, max_value=0.8),
    )
    def test_interference_never_speeds_tasks(self, work, interference):
        host = BatchHost()
        task = BatchTask(work_units=work, expected_seconds=1.0)
        assert host.runtime_seconds(task, interference) >= host.runtime_seconds(
            task, 0.0
        )

    @given(
        work=st.floats(min_value=1.0, max_value=1e3),
        expected=st.floats(min_value=1.0, max_value=2e3),
        interference=st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=60)
    def test_diagnosis_is_consistent(self, work, expected, interference):
        advisor = BatchWorkloadAdvisor()
        task = BatchTask(work_units=work, expected_seconds=expected)
        report = advisor.investigate(task, interference)
        # The index always reflects the capacity theft exactly.
        assert report.interference_index == pytest.approx(
            1.0 / (1.0 - interference)
        )
        # A mis-estimation verdict requires the isolated run to be slow.
        if report.diagnosis.name == "MISESTIMATED":
            assert report.isolated_seconds > expected


class TestKingfisherProperties:
    @given(demand=st.floats(min_value=0.1, max_value=5.5))
    @settings(max_examples=25, deadline=None)
    def test_feasible_results_meet_slo(self, demand):
        service = CassandraService()
        tuner = KingfisherTuner(service, latency_margin=0.85)
        outcome = tuner.tune(cassandra_workload(demand))
        if outcome.met_slo:
            sample = service.performance(
                cassandra_workload(demand), outcome.allocation.capacity_units
            )
            assert service.slo.is_met(sample.latency_ms)

    @given(
        d1=st.floats(min_value=0.1, max_value=5.5),
        d2=st.floats(min_value=0.1, max_value=5.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_cost_monotone_in_demand(self, d1, d2):
        service = CassandraService()
        tuner = KingfisherTuner(service, latency_margin=0.85)
        low, high = sorted((d1, d2))
        cost_low = tuner.tune(cassandra_workload(low)).allocation.hourly_cost
        cost_high = tuner.tune(cassandra_workload(high)).allocation.hourly_cost
        assert cost_low <= cost_high + 1e-9

    @given(
        start=st.integers(min_value=1, max_value=10),
        target=st.integers(min_value=1, max_value=10),
    )
    def test_transition_cost_nonnegative(self, start, target):
        cost = TransitionCost()
        charged = cost.between(
            Allocation(count=start, itype=LARGE),
            Allocation(count=target, itype=LARGE),
        )
        assert charged >= 0.0
