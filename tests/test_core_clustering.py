"""Unit tests for k-means and automatic class identification."""

import numpy as np
import pytest

from repro.core.clustering import KMeans, auto_cluster, silhouette_score


def blobs(centers, points_per_center, spread, seed=0):
    rng = np.random.default_rng(seed)
    data = []
    for center in centers:
        data.append(rng.normal(center, spread, size=(points_per_center, len(center))))
    return np.vstack(data)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        X = blobs([(0, 0), (10, 10), (20, 0)], 20, 0.5)
        model = KMeans(k=3, seed=1).fit(X)
        labels = model.predict(X)
        # Each blob's points share one label.
        for start in range(0, 60, 20):
            assert np.unique(labels[start : start + 20]).size == 1

    def test_centroids_near_truth(self):
        X = blobs([(0, 0), (10, 10)], 50, 0.3)
        model = KMeans(k=2, seed=1).fit(X)
        sorted_centroids = model.centroids[np.argsort(model.centroids[:, 0])]
        assert np.allclose(sorted_centroids[0], (0, 0), atol=0.5)
        assert np.allclose(sorted_centroids[1], (10, 10), atol=0.5)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            KMeans(k=2).predict(np.ones((2, 2)))

    def test_k_larger_than_samples_rejected(self):
        with pytest.raises(ValueError):
            KMeans(k=5).fit(np.ones((3, 2)))

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(k=0)

    def test_deterministic_given_seed(self):
        X = blobs([(0, 0), (5, 5)], 20, 0.4)
        a = KMeans(k=2, seed=3).fit(X)
        b = KMeans(k=2, seed=3).fit(X)
        assert np.allclose(np.sort(a.centroids, axis=0), np.sort(b.centroids, axis=0))

    def test_inertia_decreases_with_k(self):
        X = blobs([(0, 0), (5, 5), (10, 0)], 20, 0.5)
        inertia_2 = KMeans(k=2, seed=0).fit(X).inertia
        inertia_3 = KMeans(k=3, seed=0).fit(X).inertia
        assert inertia_3 < inertia_2


class TestSilhouette:
    def test_well_separated_scores_high(self):
        X = blobs([(0, 0), (20, 20)], 20, 0.3)
        labels = np.repeat([0, 1], 20)
        assert silhouette_score(X, labels) > 0.9

    def test_random_labels_score_low(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, 40)
        assert silhouette_score(X, labels) < 0.3

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((5, 2)), np.zeros(5, dtype=int))


class TestAutoCluster:
    def test_finds_true_k(self):
        X = blobs([(0, 0), (10, 0), (0, 10), (10, 10)], 6, 0.3)
        model = auto_cluster(X, k_min=2, k_max=8, seed=0)
        assert model.n_classes == 4

    def test_representatives_are_members(self):
        X = blobs([(0, 0), (10, 10)], 10, 0.3)
        model = auto_cluster(X, k_min=2, k_max=4)
        for cluster, rep in enumerate(model.representatives):
            assert model.labels[rep] == cluster

    def test_representative_is_closest_to_centroid(self):
        # Sec. 3.4: the Tuner runs "the instance that is closest to the
        # cluster's centroid".
        X = blobs([(0, 0), (10, 10)], 10, 0.5)
        model = auto_cluster(X, k_min=2, k_max=3)
        for cluster, rep in enumerate(model.representatives):
            member_idx = np.flatnonzero(model.labels == cluster)
            dists = np.linalg.norm(X[member_idx] - model.centroids[cluster], axis=1)
            assert np.linalg.norm(X[rep] - model.centroids[cluster]) == pytest.approx(
                dists.min()
            )

    def test_radii_cover_members(self):
        X = blobs([(0, 0), (10, 10)], 10, 0.5)
        model = auto_cluster(X, k_min=2, k_max=3)
        for i, point in enumerate(X):
            cluster = model.labels[i]
            assert (
                np.linalg.norm(point - model.centroids[cluster])
                <= model.radii[cluster] + 1e-9
            )

    def test_assign_nearest_centroid(self):
        X = blobs([(0, 0), (10, 10)], 10, 0.3)
        model = auto_cluster(X, k_min=2, k_max=3)
        label_origin = model.assign(np.array([0.5, 0.5]))
        label_far = model.assign(np.array([9.5, 9.5]))
        assert label_origin != label_far

    def test_distance_to_centroid_bad_cluster(self):
        X = blobs([(0, 0), (10, 10)], 10, 0.3)
        model = auto_cluster(X, k_min=2, k_max=3)
        with pytest.raises(ValueError):
            model.distance_to_centroid(np.zeros(2), 99)

    def test_fixed_k(self):
        X = blobs([(0, 0), (10, 0), (0, 10)], 8, 0.3)
        model = auto_cluster(X, k_min=2, k_max=2)
        assert model.n_classes == 2

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            auto_cluster(np.ones((1, 2)))

    def test_bad_k_range_rejected(self):
        X = blobs([(0, 0), (10, 10)], 10, 0.3)
        with pytest.raises(ValueError):
            auto_cluster(X, k_min=5, k_max=2)
