"""Tests for the sensitivity-sweep runners."""

import pytest

from repro.experiments.sensitivity import run_margin_sweep, run_trials_sweep


class TestMarginSweep:
    def test_points_sorted_by_margin(self):
        points = run_margin_sweep(margins=(0.9, 0.7))
        assert [p.margin for p in points] == [0.7, 0.9]

    def test_tighter_margin_never_violates_more(self):
        points = run_margin_sweep(margins=(0.7, 1.0))
        assert points[0].violation_fraction <= points[1].violation_fraction

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_margin_sweep(margins=())


class TestTrialsSweep:
    def test_default_trials_are_clean(self):
        points = run_trials_sweep(trials_options=(5,))
        assert points[0].misses == 0
        assert points[0].n_classes == 4

    def test_three_trials_trigger_conservative_fallbacks(self):
        points = run_trials_sweep(trials_options=(3,))
        assert points[0].misses > 0
        # Fallbacks are conservative: violations stay at blip level.
        assert points[0].violation_fraction < 0.03

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_trials_sweep(trials_options=())
