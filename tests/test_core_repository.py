"""Unit tests for the allocation repository (the DejaVu cache)."""

import pytest

from repro.cloud.instance_types import LARGE
from repro.cloud.provider import Allocation
from repro.core.repository import AllocationRepository


def alloc(n: int) -> Allocation:
    return Allocation(count=n, itype=LARGE)


class TestStoreAndLookup:
    def test_hit_returns_entry(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(4))
        entry = repo.lookup(0, 0)
        assert entry is not None
        assert entry.allocation == alloc(4)

    def test_miss_returns_none(self):
        repo = AllocationRepository()
        assert repo.lookup(0, 0) is None

    def test_bands_are_separate_keys(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(4))
        repo.store(0, 1, alloc(6))
        assert repo.lookup(0, 0).allocation == alloc(4)
        assert repo.lookup(0, 1).allocation == alloc(6)

    def test_overwrite_updates(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(4))
        repo.store(0, 0, alloc(5), tuned_at=99.0)
        entry = repo.lookup(0, 0)
        assert entry.allocation == alloc(5)
        assert entry.tuned_at == 99.0

    def test_len_counts_entries(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(1))
        repo.store(1, 0, alloc(2))
        assert len(repo) == 2

    def test_negative_class_rejected(self):
        with pytest.raises(ValueError):
            AllocationRepository().store(-1, 0, alloc(1))

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            AllocationRepository().store(0, -1, alloc(1))


class TestStats:
    def test_hit_rate_accounting(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(4))
        repo.lookup(0, 0)
        repo.lookup(1, 0)
        assert repo.stats.hits == 1
        assert repo.stats.misses == 1
        assert repo.stats.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_is_zero(self):
        assert AllocationRepository().stats.hit_rate == 0.0

    def test_contains_does_not_touch_stats(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(4))
        assert repo.contains(0, 0)
        assert not repo.contains(9, 0)
        assert repo.stats.hits == 0
        assert repo.stats.misses == 0


class TestIntrospection:
    def test_entries_and_classes(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(1))
        repo.store(0, 1, alloc(2))
        repo.store(2, 0, alloc(3))
        assert len(repo.entries()) == 3
        assert repo.classes() == {0, 2}

    def test_clear_empties(self):
        repo = AllocationRepository()
        repo.store(0, 0, alloc(1))
        repo.clear()
        assert len(repo) == 0
