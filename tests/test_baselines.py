"""Unit tests for the comparator policies."""

import pytest

from repro.baselines.autopilot import Autopilot
from repro.baselines.online_tuning import OnlineTuningController
from repro.baselines.oracle import OracleController
from repro.baselines.overprovision import Overprovision
from repro.baselines.rightscale import RightScale, RightScaleConfig
from repro.cloud.instance_types import LARGE
from repro.cloud.provider import Allocation, CloudProvider
from repro.core.profiler import ProductionEnvironment
from repro.core.tuner import LinearSearchTuner, scale_out_candidates
from repro.services.cassandra import CassandraService
from repro.sim.engine import StepContext
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload


def make_env():
    return ProductionEnvironment(CassandraService(), CloudProvider(max_instances=10))


def make_tuner(env):
    return LinearSearchTuner(env.service, scale_out_candidates(10))


def cassandra_workload(demand: float) -> Workload:
    return Workload(
        volume=demand / CASSANDRA_UPDATE_HEAVY.demand_per_client,
        mix=CASSANDRA_UPDATE_HEAVY,
    )


def ctx_at(t: float, workload: Workload) -> StepContext:
    return StepContext(t=t, workload=workload, hour=int(t // 3600), day=int(t // 86400))


class TestOverprovision:
    def test_deploys_max_once(self):
        env = make_env()
        controller = Overprovision(env)
        controller.on_step(ctx_at(0.0, cassandra_workload(1.0)))
        assert env.provider.current_allocation.count == 10

    def test_never_reacts(self):
        env = make_env()
        controller = Overprovision(env)
        controller.on_step(ctx_at(0.0, cassandra_workload(1.0)))
        controller.on_step(ctx_at(3600.0, cassandra_workload(9.0)))
        assert env.provider.current_allocation.count == 10

    def test_custom_allocation(self):
        env = make_env()
        controller = Overprovision(env, Allocation(count=4, itype=LARGE))
        controller.on_step(ctx_at(0.0, cassandra_workload(1.0)))
        assert env.provider.current_allocation.count == 4


class TestAutopilot:
    def test_requires_24_hour_schedule(self):
        env = make_env()
        autopilot = Autopilot(env, make_tuner(env))
        with pytest.raises(ValueError):
            autopilot.learn_schedule([cassandra_workload(1.0)] * 23)

    def test_runs_24_tunings(self):
        env = make_env()
        autopilot = Autopilot(env, make_tuner(env))
        autopilot.learn_schedule([cassandra_workload(1.0)] * 24)
        assert autopilot.tuning_invocations == 24

    def test_replays_by_hour_of_day(self):
        env = make_env()
        autopilot = Autopilot(env, make_tuner(env))
        day = [cassandra_workload(1.0)] * 12 + [cassandra_workload(5.0)] * 12
        autopilot.learn_schedule(day)
        autopilot.on_step(ctx_at(26 * 3600.0, cassandra_workload(1.0)))
        low = env.provider.current_allocation.count
        autopilot.on_step(ctx_at(38 * 3600.0, cassandra_workload(1.0)))
        high = env.provider.current_allocation.count
        # Hour 2 replays the low allocation, hour 14 the high one —
        # regardless of the actual offered workload.
        assert low < high

    def test_unlearned_autopilot_rejected(self):
        env = make_env()
        autopilot = Autopilot(env, make_tuner(env))
        with pytest.raises(RuntimeError):
            autopilot.on_step(ctx_at(0.0, cassandra_workload(1.0)))


class TestRightScale:
    def test_initial_deployment(self):
        env = make_env()
        controller = RightScale(env, initial_instances=2)
        controller.on_step(ctx_at(0.0, cassandra_workload(1.0)))
        assert env.provider.current_allocation.count == 2

    def test_scales_up_by_two(self):
        env = make_env()
        controller = RightScale(env, initial_instances=2)
        controller.on_step(ctx_at(0.0, cassandra_workload(5.0)))
        controller.on_step(ctx_at(60.0, cassandra_workload(5.0)))
        assert controller.target_instances == 4

    def test_scales_down_by_one(self):
        env = make_env()
        controller = RightScale(env, initial_instances=4)
        controller.on_step(ctx_at(0.0, cassandra_workload(0.5)))
        controller.on_step(ctx_at(60.0, cassandra_workload(0.5)))
        assert controller.target_instances == 3

    def test_calm_time_gates_actions(self):
        config = RightScaleConfig(resize_calm_seconds=900.0)
        env = make_env()
        controller = RightScale(env, config, initial_instances=2)
        controller.on_step(ctx_at(0.0, cassandra_workload(5.9)))
        controller.on_step(ctx_at(10.0, cassandra_workload(5.9)))   # resize to 4
        controller.on_step(ctx_at(20.0, cassandra_workload(5.9)))   # calm: no-op
        assert controller.target_instances == 4
        controller.on_step(ctx_at(911.0, cassandra_workload(5.9)))  # next resize
        assert controller.target_instances == 6

    def test_respects_max_instances(self):
        config = RightScaleConfig(resize_calm_seconds=0.0, max_instances=4)
        env = make_env()
        controller = RightScale(env, config, initial_instances=2)
        for i in range(10):
            controller.on_step(ctx_at(i * 60.0, cassandra_workload(9.0)))
        assert controller.target_instances == 4

    def test_respects_min_instances(self):
        config = RightScaleConfig(resize_calm_seconds=0.0, min_instances=1)
        env = make_env()
        controller = RightScale(env, config, initial_instances=3)
        for i in range(10):
            controller.on_step(ctx_at(i * 60.0, cassandra_workload(0.1)))
        assert controller.target_instances == 1

    def test_resize_actions_logged(self):
        env = make_env()
        controller = RightScale(env, initial_instances=2)
        controller.on_step(ctx_at(0.0, cassandra_workload(5.0)))
        controller.on_step(ctx_at(60.0, cassandra_workload(5.0)))
        assert controller.resize_actions == [(60.0, 2, 4)]

    def test_bad_initial_count_rejected(self):
        with pytest.raises(ValueError):
            RightScale(make_env(), initial_instances=0)


class TestOnlineTuning:
    def test_tunes_on_first_step(self):
        env = make_env()
        controller = OnlineTuningController(env, make_tuner(env))
        controller.on_step(ctx_at(0.0, cassandra_workload(3.0)))
        assert controller.tuning_invocations == 1

    def test_allocation_applies_after_tuning_delay(self):
        env = make_env()
        controller = OnlineTuningController(env, make_tuner(env))
        controller.on_step(ctx_at(0.0, cassandra_workload(3.0)))
        # Full capacity serves while tuning runs.
        assert env.provider.current_allocation.count == 10
        controller.on_step(
            ctx_at(controller.total_tuning_seconds + 1.0, cassandra_workload(3.0))
        )
        assert env.provider.current_allocation.count < 10

    def test_no_retune_for_stable_volume(self):
        env = make_env()
        controller = OnlineTuningController(env, make_tuner(env))
        controller.on_step(ctx_at(0.0, cassandra_workload(3.0)))
        controller.on_step(ctx_at(1e5, cassandra_workload(3.05)))
        assert controller.tuning_invocations == 1

    def test_retunes_on_large_change(self):
        env = make_env()
        controller = OnlineTuningController(env, make_tuner(env))
        controller.on_step(ctx_at(0.0, cassandra_workload(3.0)))
        controller.on_step(ctx_at(1e5, cassandra_workload(5.0)))
        assert controller.tuning_invocations == 2

    def test_bad_threshold_rejected(self):
        env = make_env()
        with pytest.raises(ValueError):
            OnlineTuningController(env, make_tuner(env), volume_change_fraction=0.0)


class TestOracle:
    def test_tracks_demand_exactly(self):
        env = make_env()
        oracle = OracleController(env, make_tuner(env))
        oracle.on_step(ctx_at(0.0, cassandra_workload(1.0)))
        low = env.provider.current_allocation.count
        oracle.on_step(ctx_at(60.0, cassandra_workload(5.9)))
        high = env.provider.current_allocation.count
        assert low < high
        assert high == 10
