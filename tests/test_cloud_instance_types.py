"""Unit tests for the instance-type catalogue."""

import pytest

from repro.cloud.instance_types import CATALOGUE, EXTRA_LARGE, LARGE, InstanceType, by_name


class TestPaperConstants:
    def test_large_price_is_papers(self):
        # "$0.34/hour for a large instance on EC2" (Sec. 4.5).
        assert LARGE.price_per_hour == 0.34

    def test_xlarge_price_is_papers(self):
        # "$0.68/hour for extra large as of July 2011" (Sec. 4.5).
        assert EXTRA_LARGE.price_per_hour == 0.68

    def test_xlarge_is_twice_the_price(self):
        assert EXTRA_LARGE.price_per_hour == 2 * LARGE.price_per_hour

    def test_xlarge_has_more_capacity(self):
        assert EXTRA_LARGE.capacity_units > LARGE.capacity_units

    def test_xlarge_capacity_is_sublinear_in_price(self):
        # XL is not a full 2x in delivered capacity (memory/IO do not
        # scale linearly) — the reason scale-up saves less than
        # scale-out in the paper.
        assert EXTRA_LARGE.capacity_units < 2 * LARGE.capacity_units


class TestInstanceType:
    def test_ordering_by_capacity(self):
        assert LARGE < EXTRA_LARGE

    def test_str_is_name(self):
        assert str(LARGE) == "m1.large"

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            InstanceType(
                capacity_units=0.0,
                name="bad",
                price_per_hour=0.1,
                memory_gb=1.0,
                virtual_cores=1,
            )

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            InstanceType(
                capacity_units=1.0,
                name="bad",
                price_per_hour=-0.1,
                memory_gb=1.0,
                virtual_cores=1,
            )


class TestByName:
    def test_lookup_large(self):
        assert by_name("m1.large") is LARGE

    def test_lookup_xlarge(self):
        assert by_name("m1.xlarge") is EXTRA_LARGE

    def test_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            by_name("t2.nano")

    def test_catalogue_has_both_types(self):
        assert set(t.name for t in CATALOGUE) == {"m1.large", "m1.xlarge"}
