"""Properties of the fleet-scale multiplexing study (Sec. 5)."""

import pytest

from repro.experiments.multiplexing_study import (
    lane_kinds,
    run_fleet_multiplexing_study,
)

#: One signature collection on the shared profiler (Monitor default).
SIGNATURE_SECONDS = 10.0


def run_small(n_lanes: int, **kwargs):
    defaults = dict(hours=6.0, lane_seed_stride=0, seed=0)
    defaults.update(kwargs)
    return run_fleet_multiplexing_study(n_lanes=n_lanes, **defaults)


class TestValidation:
    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError, match="lane"):
            run_fleet_multiplexing_study(n_lanes=0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            run_fleet_multiplexing_study(n_lanes=1, hours=0.0)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            run_fleet_multiplexing_study(n_lanes=2, mix="sideways")

    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError, match="host"):
            run_fleet_multiplexing_study(n_lanes=2, n_hosts=0)

    def test_lane_kinds_compositions(self):
        assert lane_kinds(3, "scaleout") == ("scaleout",) * 3
        assert lane_kinds(2, "scaleup") == ("scaleup",) * 2
        assert lane_kinds(4, "mixed") == (
            "scaleout", "scaleup", "scaleout", "scaleup",
        )

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            run_fleet_multiplexing_study(n_lanes=2, n_hosts=1, placement="pile")

    def test_placement_without_hosts_rejected(self):
        with pytest.raises(ValueError, match="pass n_hosts"):
            run_fleet_multiplexing_study(
                n_lanes=2, placement="first_fit_decreasing"
            )

    def test_migration_without_hosts_rejected(self):
        from repro.sim.placement import MigrationPolicy

        with pytest.raises(ValueError, match="pass n_hosts"):
            run_fleet_multiplexing_study(
                n_lanes=2, migration=MigrationPolicy()
            )

    def test_unknown_host_demand_rejected(self):
        with pytest.raises(ValueError, match="host_demand"):
            run_fleet_multiplexing_study(n_lanes=2, host_demand="psychic")

    def test_nonpositive_demand_factor_rejected(self):
        with pytest.raises(ValueError, match="demand factors"):
            run_fleet_multiplexing_study(n_lanes=2, demand_factors=(1.0, 0.0))

    def test_lane_families_split_by_demand_factor(self):
        from repro.experiments.multiplexing_study import lane_families

        assert lane_families(4, "mixed", None) == (
            "scaleout", "scaleup", "scaleout", "scaleup",
        )
        families = lane_families(4, "mixed", (0.5, 1.0))
        assert families == (
            "scaleout@x0.5", "scaleup@x1", "scaleout@x0.5", "scaleup@x1",
        )


class TestSharedRepository:
    def test_hit_rate_monotone_as_lanes_grow(self):
        # With identical lanes the shared repository serves every lane
        # from the one learned model: multiplexing more services onto
        # the repository must never degrade its hit rate.
        rates = [run_small(n).hit_rate for n in (1, 2, 4)]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))
        assert rates[0] > 0.9

    def test_learning_amortized_fleet_wide(self):
        # One learning phase and one set of tuner runs, regardless of
        # fleet size — the multiplexing cost claim.
        studies = [run_small(n) for n in (1, 4)]
        assert [s.learning_runs for s in studies] == [1, 1]
        assert studies[0].tuning_invocations == studies[1].tuning_invocations

    def test_profiling_overhead_shrinks_with_fleet_size(self):
        small, large = run_small(1), run_small(4)
        assert large.amortized_profiling_fraction < (
            small.amortized_profiling_fraction
        )

    def test_relearn_detaches_from_shared_repository(self):
        # Re-clustering renumbers workload classes, so a manager that
        # re-learns must fork onto a private cache instead of clearing
        # (or re-keying) the fleet's shared one under the other lanes.
        from repro.core.repository import AllocationRepository
        from repro.experiments.setup import build_scaleout_setup

        shared = AllocationRepository()
        leader = build_scaleout_setup(repository=shared, seed=0)
        follower = build_scaleout_setup(repository=shared, seed=0)
        leader.manager.learn(leader.trace.hourly_workloads(day=0))
        follower.manager.adopt_trained_state(leader.manager)
        # Mutable model state is copied, not aliased.
        assert follower.manager.standardizer is not leader.manager.standardizer
        entries_before = len(shared)
        assert entries_before > 0

        follower.manager.relearn(
            now=0.0, workloads=follower.trace.hourly_workloads(day=1)
        )
        assert follower.manager.repository is not shared
        assert len(shared) == entries_before

        leader.manager.relearn(
            now=0.0, workloads=leader.trace.hourly_workloads(day=1)
        )
        assert leader.manager.repository is not shared
        assert len(shared) == entries_before

    def test_direct_learn_on_populated_shared_repository_detaches(self):
        # Passing one repository to several constructors is the other
        # sharing shape: a manager that learns on an already-populated
        # shared cache must fork rather than clear it under the lane
        # that populated it.
        from repro.core.repository import AllocationRepository
        from repro.experiments.setup import build_scaleout_setup

        shared = AllocationRepository()
        first = build_scaleout_setup(repository=shared, seed=0)
        second = build_scaleout_setup(repository=shared, seed=1)
        first.manager.learn(first.trace.hourly_workloads(day=0))
        entries_before = len(shared)
        assert entries_before > 0

        second.manager.learn(second.trace.hourly_workloads(day=0))
        assert second.manager.repository is not shared
        assert len(shared) == entries_before
        assert len(second.manager.repository) > 0


class TestProfilingContention:
    def test_queue_wait_bounded_by_fleet_size(self):
        # All lanes adapt in the same hourly step; with one slot the
        # FIFO bound is (n_lanes - 1) service times, and the queue must
        # drain before the next hourly adaptation wave.
        study = run_small(4)
        assert study.max_queue_wait_seconds <= 3 * SIGNATURE_SECONDS
        assert study.max_queue_depth <= 4
        assert study.rejected_profiles == 0

    def test_more_slots_reduce_waiting(self):
        one = run_small(4, profiling_slots=1)
        four = run_small(4, profiling_slots=4)
        assert four.mean_queue_wait_seconds <= one.mean_queue_wait_seconds
        assert four.mean_queue_wait_seconds == 0.0

    def test_bounded_queue_rejects_when_overloaded(self):
        study = run_small(6, max_pending=1)
        assert study.rejected_profiles > 0


class TestFleetSeries:
    def test_result_shape_and_aggregates(self):
        study = run_small(3, hours=2.0)
        result = study.result
        assert result.n_lanes == 3
        assert result.n_steps == study.n_steps == int(2.0 * 3600 / 300.0)
        total = result.total("hourly_cost")
        lanes = [result.lane_series("hourly_cost", i) for i in range(3)]
        for step in range(result.n_steps):
            assert total.values[step] == pytest.approx(
                sum(lane.values[step] for lane in lanes)
            )

    def test_identical_lanes_observe_identical_series(self):
        # One profiling slot per lane: nobody waits, so two identical
        # lanes stay in lockstep.
        study = run_small(2, hours=2.0, profiling_slots=2)
        matrix = study.result.matrix("latency_ms")
        assert matrix[:, 0].tolist() == matrix[:, 1].tolist()

    def test_profiling_contention_desynchronizes_identical_lanes(self):
        # With a single shared slot the second lane's signature waits
        # ~10 s each wave, so its adaptations deploy late (queue
        # feedback, Sec. 5) and its warm-up transients shift: the lanes
        # are no longer bit-identical even though their workloads are.
        study = run_small(2, hours=2.0, profiling_slots=1)
        matrix = study.result.matrix("latency_ms")
        assert matrix[:, 0].tolist() != matrix[:, 1].tolist()
        assert study.max_queue_wait_seconds > 0.0


class TestHeterogeneousFleet:
    """Mixed scale-out + scale-up lanes in one engine run (Sec. 4 + 5)."""

    def run_mixed(self, **kwargs):
        return run_small(4, mix="mixed", **kwargs)

    def test_two_observation_schemas(self):
        result = self.run_mixed(hours=2.0).result
        assert result.n_schemas == 2
        out_schema = result.schema_of(0)
        up_schema = result.schema_of(1)
        assert "instances" in out_schema and "instance_is_xl" not in out_schema
        assert "instance_is_xl" in up_schema and "instances" not in up_schema
        assert result.lane_schemas == (0, 1, 0, 1)

    def test_lane_blocks_round_trip(self):
        result = self.run_mixed(hours=2.0).result
        for lane in range(result.n_lanes):
            schema, rows = result.lane_block(lane)
            assert rows.shape == (result.n_steps, len(schema))
            for j, name in enumerate(schema):
                assert (
                    rows[:, j].tolist()
                    == result.lane_series(name, lane).values.tolist()
                )

    def test_shared_series_span_all_lanes(self):
        result = self.run_mixed(hours=2.0).result
        for name in ("latency_ms", "hourly_cost", "load", "qos_percent"):
            assert result.lanes_recording(name) == (0, 1, 2, 3)
        assert result.lanes_recording("instances") == (0, 2)
        assert result.lanes_recording("instance_is_xl") == (1, 3)

    def test_one_learning_phase_per_family(self):
        study = self.run_mixed(hours=2.0)
        assert study.mix == "mixed"
        assert study.learning_runs == 2
        homogeneous = run_small(4, hours=2.0)
        assert homogeneous.learning_runs == 1

    def test_fleet_cost_sums_both_families(self):
        study = self.run_mixed(hours=2.0)
        result = study.result
        per_lane = [
            result.lane_series("hourly_cost", lane).values.mean()
            for lane in range(4)
        ]
        assert study.fleet_hourly_cost == pytest.approx(sum(per_lane))

    def test_violations_judged_against_each_lanes_own_slo(self):
        study = self.run_mixed(hours=2.0)
        assert 0.0 <= study.violation_fraction <= 1.0


class TestHeterogeneousDemand:
    """``demand_factors`` makes lanes differently sized (and family-split)."""

    def test_one_learning_run_per_kind_and_factor(self):
        study = run_small(
            4, hours=2.0, mix="scaleout", demand_factors=(0.5, 1.0)
        )
        assert study.demand_factors == (0.5, 1.0)
        assert study.learning_runs == 2  # scaleout@x0.5 and scaleout@x1

    def test_factor_one_reproduces_uniform_fleet(self):
        uniform = run_small(2, hours=2.0)
        factored = run_small(2, hours=2.0, demand_factors=(1.0,))
        assert (
            factored.result.matrix("latency_ms").tolist()
            == uniform.result.matrix("latency_ms").tolist()
        )
        assert factored.hit_rate == uniform.hit_rate

    def test_bigger_factor_bigger_spend(self):
        small = run_small(1, hours=12.0, demand_factors=(0.5,))
        big = run_small(1, hours=12.0, demand_factors=(1.2,))
        assert big.fleet_hourly_cost > small.fleet_hourly_cost


class TestPlacementSensitivityStudy:
    """The tentpole study: same fleet, different packings."""

    #: 20 heterogeneous lanes on 5 hosts: five lane sizes against a
    #: host count they stride, so round-robin stacks same-sized lanes.
    KWARGS = dict(
        n_lanes=20,
        hours=24.0,
        n_hosts=5,
        host_capacity_units=24.0,
        demand_factors=(0.7, 0.85, 1.0, 1.1, 1.2),
    )

    def test_ffd_strictly_reduces_mean_theft_vs_round_robin(self):
        from repro.experiments.placement_study import (
            run_placement_sensitivity_study,
        )

        study = run_placement_sensitivity_study(
            policies=("round_robin", "first_fit_decreasing"), **self.KWARGS
        )
        round_robin = study.point("round_robin")
        ffd = study.point("first_fit_decreasing")
        # The same fleet, the same traces, the same controllers — only
        # the packing differs, and it alone moves the theft frontier.
        assert round_robin.fleet_hourly_cost == pytest.approx(
            ffd.fleet_hourly_cost, rel=0.05
        )
        assert round_robin.mean_host_theft > 0.0
        assert ffd.mean_host_theft < round_robin.mean_host_theft
        assert ffd.peak_host_theft < round_robin.peak_host_theft
        assert study.best.policy in ("first_fit_decreasing", "round_robin")

    def test_migrate_suffix_attaches_migration(self):
        from repro.experiments.placement_study import (
            run_placement_sensitivity_study,
        )

        study = run_placement_sensitivity_study(
            policies=("round_robin", "round_robin+migrate"),
            rebalance_every=12,
            **self.KWARGS,
        )
        static = study.point("round_robin")
        migrating = study.point("round_robin+migrate")
        assert static.migrations == 0
        assert migrating.migrations >= 1
        assert migrating.mean_host_theft < static.mean_host_theft

    def test_point_lookup_and_validation(self):
        from repro.experiments.placement_study import (
            parse_policy_spec,
            run_placement_sensitivity_study,
        )

        with pytest.raises(ValueError, match="at least one"):
            run_placement_sensitivity_study(policies=())
        with pytest.raises(ValueError, match="unknown placement policy"):
            parse_policy_spec("tetris")
        with pytest.raises(ValueError, match="suffix"):
            parse_policy_spec("best_fit+teleport")
        name, migration = parse_policy_spec("best_fit+migrate")
        assert name == "best_fit" and migration is not None
        name, migration = parse_policy_spec("best_fit")
        assert name == "best_fit" and migration is None


class TestHostCoupling:
    """Co-located lanes steal capacity; escalation crosses services."""

    # Two lanes on one 5-unit host: each family's trace demands
    # ~3.5-4 units at the day's plateau, so the co-located pair
    # overcommits the host while either lane alone would not.
    SQUEEZE = dict(n_lanes=2, mix="mixed", hours=12.0, host_capacity_units=5.0)

    def test_neighbour_pressure_escalates_interference_band(self):
        study = run_small(n_hosts=1, **self.SQUEEZE)
        assert study.n_hosts == 1
        assert study.host_overload_fraction > 0.0
        assert study.peak_host_theft > 0.0
        # At least one manager blamed its co-located neighbour and
        # tuned a band > 0 allocation (Sec. 3.6 across services).
        assert study.interference_escalations > 0

    def test_no_neighbour_no_escalation(self):
        # Same lanes, same demands, same host capacity — but one lane
        # per host.  Self-saturation must not read as interference, so
        # no band escalation fires: the escalations above are caused by
        # the neighbour, not by load alone.
        study = run_small(n_hosts=2, **self.SQUEEZE)
        assert study.peak_host_theft == 0.0
        assert study.mean_host_theft == 0.0
        assert study.interference_escalations == 0

    def test_dedicated_hardware_default_is_uncoupled(self):
        study = run_small(2, hours=2.0)
        assert study.n_hosts == 0
        assert study.host_overload_fraction == 0.0
        assert study.interference_escalations == 0

    def test_generous_hosts_behave_like_dedicated_hardware(self):
        coupled = run_small(
            2, hours=2.0, n_hosts=1, host_capacity_units=1000.0
        )
        dedicated = run_small(2, hours=2.0)
        assert coupled.peak_host_theft == 0.0
        assert (
            coupled.result.matrix("latency_ms").tolist()
            == dedicated.result.matrix("latency_ms").tolist()
        )
