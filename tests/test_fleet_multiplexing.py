"""Properties of the fleet-scale multiplexing study (Sec. 5)."""

import pytest

from repro.experiments.multiplexing_study import run_fleet_multiplexing_study

#: One signature collection on the shared profiler (Monitor default).
SIGNATURE_SECONDS = 10.0


def run_small(n_lanes: int, **kwargs):
    defaults = dict(hours=6.0, lane_seed_stride=0, seed=0)
    defaults.update(kwargs)
    return run_fleet_multiplexing_study(n_lanes=n_lanes, **defaults)


class TestValidation:
    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError, match="lane"):
            run_fleet_multiplexing_study(n_lanes=0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            run_fleet_multiplexing_study(n_lanes=1, hours=0.0)


class TestSharedRepository:
    def test_hit_rate_monotone_as_lanes_grow(self):
        # With identical lanes the shared repository serves every lane
        # from the one learned model: multiplexing more services onto
        # the repository must never degrade its hit rate.
        rates = [run_small(n).hit_rate for n in (1, 2, 4)]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))
        assert rates[0] > 0.9

    def test_learning_amortized_fleet_wide(self):
        # One learning phase and one set of tuner runs, regardless of
        # fleet size — the multiplexing cost claim.
        studies = [run_small(n) for n in (1, 4)]
        assert [s.learning_runs for s in studies] == [1, 1]
        assert studies[0].tuning_invocations == studies[1].tuning_invocations

    def test_profiling_overhead_shrinks_with_fleet_size(self):
        small, large = run_small(1), run_small(4)
        assert large.amortized_profiling_fraction < (
            small.amortized_profiling_fraction
        )

    def test_relearn_detaches_from_shared_repository(self):
        # Re-clustering renumbers workload classes, so a manager that
        # re-learns must fork onto a private cache instead of clearing
        # (or re-keying) the fleet's shared one under the other lanes.
        from repro.core.repository import AllocationRepository
        from repro.experiments.setup import build_scaleout_setup

        shared = AllocationRepository()
        leader = build_scaleout_setup(repository=shared, seed=0)
        follower = build_scaleout_setup(repository=shared, seed=0)
        leader.manager.learn(leader.trace.hourly_workloads(day=0))
        follower.manager.adopt_trained_state(leader.manager)
        # Mutable model state is copied, not aliased.
        assert follower.manager.standardizer is not leader.manager.standardizer
        entries_before = len(shared)
        assert entries_before > 0

        follower.manager.relearn(
            now=0.0, workloads=follower.trace.hourly_workloads(day=1)
        )
        assert follower.manager.repository is not shared
        assert len(shared) == entries_before

        leader.manager.relearn(
            now=0.0, workloads=leader.trace.hourly_workloads(day=1)
        )
        assert leader.manager.repository is not shared
        assert len(shared) == entries_before

    def test_direct_learn_on_populated_shared_repository_detaches(self):
        # Passing one repository to several constructors is the other
        # sharing shape: a manager that learns on an already-populated
        # shared cache must fork rather than clear it under the lane
        # that populated it.
        from repro.core.repository import AllocationRepository
        from repro.experiments.setup import build_scaleout_setup

        shared = AllocationRepository()
        first = build_scaleout_setup(repository=shared, seed=0)
        second = build_scaleout_setup(repository=shared, seed=1)
        first.manager.learn(first.trace.hourly_workloads(day=0))
        entries_before = len(shared)
        assert entries_before > 0

        second.manager.learn(second.trace.hourly_workloads(day=0))
        assert second.manager.repository is not shared
        assert len(shared) == entries_before
        assert len(second.manager.repository) > 0


class TestProfilingContention:
    def test_queue_wait_bounded_by_fleet_size(self):
        # All lanes adapt in the same hourly step; with one slot the
        # FIFO bound is (n_lanes - 1) service times, and the queue must
        # drain before the next hourly adaptation wave.
        study = run_small(4)
        assert study.max_queue_wait_seconds <= 3 * SIGNATURE_SECONDS
        assert study.max_queue_depth <= 4
        assert study.rejected_profiles == 0

    def test_more_slots_reduce_waiting(self):
        one = run_small(4, profiling_slots=1)
        four = run_small(4, profiling_slots=4)
        assert four.mean_queue_wait_seconds <= one.mean_queue_wait_seconds
        assert four.mean_queue_wait_seconds == 0.0

    def test_bounded_queue_rejects_when_overloaded(self):
        study = run_small(6, max_pending=1)
        assert study.rejected_profiles > 0


class TestFleetSeries:
    def test_result_shape_and_aggregates(self):
        study = run_small(3, hours=2.0)
        result = study.result
        assert result.n_lanes == 3
        assert result.n_steps == study.n_steps == int(2.0 * 3600 / 300.0)
        total = result.total("hourly_cost")
        lanes = [result.lane_series("hourly_cost", i) for i in range(3)]
        for step in range(result.n_steps):
            assert total.values[step] == pytest.approx(
                sum(lane.values[step] for lane in lanes)
            )

    def test_identical_lanes_observe_identical_series(self):
        study = run_small(2, hours=2.0)
        matrix = study.result.matrix("latency_ms")
        assert matrix[:, 0].tolist() == matrix[:, 1].tolist()
