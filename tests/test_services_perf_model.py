"""Unit tests for the queueing performance model."""

import pytest

from repro.services.perf_model import QueueingModel


class TestUtilization:
    def test_basic_ratio(self):
        model = QueueingModel()
        assert model.utilization(3.0, 6.0) == pytest.approx(0.5)

    def test_interference_steals_capacity(self):
        model = QueueingModel()
        assert model.utilization(3.0, 6.0, interference=0.5) == pytest.approx(1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueueingModel().utilization(1.0, 0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            QueueingModel().utilization(-1.0, 1.0)

    def test_interference_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QueueingModel().utilization(1.0, 1.0, interference=1.0)


class TestLatency:
    def test_zero_load_is_base(self):
        model = QueueingModel(base_latency_ms=20.0)
        assert model.latency_ms(0.0, 10.0) == pytest.approx(20.0)

    def test_open_system_curve(self):
        # latency = base / (1 - rho): at rho = 0.5 it doubles.
        model = QueueingModel(base_latency_ms=20.0)
        assert model.latency_ms(5.0, 10.0) == pytest.approx(40.0)

    def test_slo_knee_at_two_thirds(self):
        # The 60 ms Cassandra SLO binds at rho = 2/3 with base 20 ms —
        # the calibration point every trace experiment relies on.
        model = QueueingModel(base_latency_ms=20.0)
        assert model.latency_ms(2.0, 3.0) == pytest.approx(60.0)

    def test_monotone_in_demand(self):
        model = QueueingModel()
        latencies = [model.latency_ms(d, 10.0) for d in (1.0, 5.0, 9.0, 11.0, 15.0)]
        assert latencies == sorted(latencies)

    def test_overload_is_capped(self):
        model = QueueingModel(max_latency_ms=250.0)
        assert model.latency_ms(100.0, 1.0) == 250.0

    def test_finite_through_saturation(self):
        # At full saturation the client-side timeout cap applies; the
        # function stays finite rather than diverging.
        model = QueueingModel()
        assert model.latency_ms(1.0, 1.0) == model.max_latency_ms

    def test_interference_increases_latency(self):
        model = QueueingModel()
        clean = model.latency_ms(4.0, 10.0)
        degraded = model.latency_ms(4.0, 10.0, interference=0.2)
        assert degraded > clean


class TestInverse:
    def test_capacity_for_latency_inverts(self):
        model = QueueingModel(base_latency_ms=20.0)
        capacity = model.capacity_for_latency(4.0, 60.0)
        assert model.latency_ms(4.0, capacity) == pytest.approx(60.0)

    def test_unreachable_latency_rejected(self):
        model = QueueingModel(base_latency_ms=20.0)
        with pytest.raises(ValueError):
            model.capacity_for_latency(1.0, 19.0)

    def test_zero_demand_needs_zero_capacity(self):
        model = QueueingModel()
        assert model.capacity_for_latency(0.0, 60.0) == 0.0


class TestValidation:
    def test_bad_base_latency(self):
        with pytest.raises(ValueError):
            QueueingModel(base_latency_ms=0.0)

    def test_bad_smoothing_rho(self):
        with pytest.raises(ValueError):
            QueueingModel(smoothing_rho=1.0)

    def test_cap_must_exceed_base(self):
        with pytest.raises(ValueError):
            QueueingModel(base_latency_ms=100.0, max_latency_ms=50.0)
