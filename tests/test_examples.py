"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; these tests keep them honest
against API drift.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    # The repository promises at least three runnable examples.
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_hit_rate(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "workload classes" in out
    assert "cache hit rate" in out
