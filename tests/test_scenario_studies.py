"""Tests for the multiplexing and flash-crowd scenario studies."""

import pytest

from repro.experiments.flash_crowd import run_flash_crowd_study
from repro.experiments.multiplexing_study import run_multiplexing_study
from repro.telemetry.counters import HARDWARE_REGISTERS


class TestMultiplexingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_multiplexing_study()

    def test_fits_register_budget(self, study):
        assert len(study.events) <= HARDWARE_REGISTERS

    def test_multiplexing_is_noisier(self, study):
        assert study.multiplexed_cv > study.dedicated_cv

    def test_noise_levels_are_small(self, study):
        # Both modes remain usable signatures (cv well below the
        # between-class gaps), matching Fig. 4's tight trials.
        assert study.dedicated_cv < 0.05
        assert study.multiplexed_cv < 0.10

    def test_too_few_trials_rejected(self):
        with pytest.raises(ValueError):
            run_multiplexing_study(trials=1)


class TestFlashCrowdStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_flash_crowd_study()

    def test_fallback_then_relearn(self, study):
        assert study.fallback_hours >= 1
        assert study.relearn_runs == 1

    def test_right_sized_after_relearn(self, study):
        assert study.crowd_allocation_after < study.full_capacity

    def test_slo_held_throughout(self, study):
        assert study.slo_met_during_fallback
        assert study.slo_met_after_relearn

    def test_bad_hours_rejected(self):
        with pytest.raises(ValueError):
            run_flash_crowd_study(crowd_hours=0)
