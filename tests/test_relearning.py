"""Tests for online re-learning (Sec. 3.5's re-clustering path)."""

import pytest

from repro.core.manager import DejaVuConfig
from repro.experiments.setup import build_scaleout_setup
from repro.sim.engine import StepContext
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY, Workload


def ctx_at(t: float, workload: Workload) -> StepContext:
    return StepContext(t=t, workload=workload, hour=int(t // 3600), day=int(t // 86400))


def unseen_workload(setup, factor: float = 1.35) -> Workload:
    """A volume far above every learned plateau (a flash crowd)."""
    return Workload(
        volume=factor * setup.trace.peak_clients, mix=CASSANDRA_UPDATE_HEAVY
    )


class TestManualRelearn:
    def test_relearn_replaces_clustering(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        old_classes = manager.clustering.n_classes
        # Re-learn from a day that also contains the unseen level.
        workloads = setup.trace.hourly_workloads(day=1) + [unseen_workload(setup)] * 3
        report = manager.relearn(now=2 * 86400.0, workloads=workloads)
        assert manager.relearn_count == 1
        assert report.n_classes >= old_classes

    def test_relearn_makes_unseen_workload_a_hit(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        novel = unseen_workload(setup)
        _, certainty_before, _ = manager.classify(novel)
        assert certainty_before < manager.config.certainty_threshold
        workloads = setup.trace.hourly_workloads(day=1) + [novel] * 3
        manager.relearn(now=2 * 86400.0, workloads=workloads)
        _, certainty_after, _ = manager.classify(novel)
        assert certainty_after >= manager.config.certainty_threshold

    def test_relearn_invalidates_repository(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        manager.repository.store(99, 0, setup.provider.full_capacity())
        manager.relearn(
            now=86400.0, workloads=setup.trace.hourly_workloads(day=1)
        )
        # Stale entries from the previous clustering are gone.
        assert not manager.repository.contains(99, 0)

    def test_relearn_without_history_rejected(self):
        setup = build_scaleout_setup("messenger")
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        with pytest.raises(ValueError):
            manager.relearn(now=0.0)


class TestAutoRelearn:
    def _setup_with_auto(self):
        config = DejaVuConfig(
            auto_relearn=True,
            relearn_after_misses=3,
            min_relearn_history=10,
        )
        setup = build_scaleout_setup("messenger", config=config)
        setup.manager.learn(setup.trace.hourly_workloads(day=0))
        return setup

    def test_auto_relearn_triggers_after_miss_streak(self):
        setup = self._setup_with_auto()
        manager = setup.manager
        # Build up enough history with normal hours first.
        for hour in range(24, 40):
            t = hour * 3600.0
            manager.adapt(ctx_at(t, setup.trace.workload_at(t)))
        novel = unseen_workload(setup)
        for i in range(3):
            manager.adapt(ctx_at((41 + i) * 3600.0, novel))
        assert manager.relearn_count == 1
        # The novel level is now a learned class: next time is a hit.
        event = manager.adapt(ctx_at(45 * 3600.0, novel))
        assert event.cache_hit

    def test_no_auto_relearn_without_history(self):
        config = DejaVuConfig(
            auto_relearn=True, relearn_after_misses=2, min_relearn_history=24
        )
        setup = build_scaleout_setup("messenger", config=config)
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        novel = unseen_workload(setup)
        for i in range(3):
            manager.adapt(ctx_at((24 + i) * 3600.0, novel))
        assert manager.relearn_count == 0
        assert manager.relearn_requested

    def test_auto_relearn_off_by_default(self):
        setup = build_scaleout_setup(
            "messenger", config=DejaVuConfig(relearn_after_misses=2)
        )
        manager = setup.manager
        manager.learn(setup.trace.hourly_workloads(day=0))
        novel = unseen_workload(setup)
        for hour in range(24, 48):
            t = hour * 3600.0
            manager.adapt(ctx_at(t, setup.trace.workload_at(t)))
        for i in range(4):
            manager.adapt(ctx_at((48 + i) * 3600.0, novel))
        assert manager.relearn_requested
        assert manager.relearn_count == 0
