"""The docs must not rot: the CI link checker also gates tier-1."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_readme_and_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "paper_mapping.md").is_file()


def test_relative_links_resolve():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_readme_documents_the_tier1_gate():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "PYTHONPATH=src python -m pytest -x -q" in readme
