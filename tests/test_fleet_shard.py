"""Sharded fleet sweeps: partitioning, npz persistence, exact merging.

The contract under test: a fleet cut into contiguous shards — each run
by a worker process against its own profiling environment, persisted
via ``FleetResult.to_npz`` and merged by the parent — produces the
same ``FleetResult``, per-lane rows, and per-lane adaptation-event
ordering as the single-process run, bit for bit — for non-interacting
lanes (uncontended queue, counter or legacy streams) and for
host-coupled fleets, where shards synchronize per-step demand
contributions through the cross-shard exchange before computing the
global theft pass.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.multiplexing_study import run_fleet_multiplexing_study
from repro.sim.exchange import ExchangeSpec
from repro.sim.faults import FaultSchedule, HostFaultEvent
from repro.sim.fleet import FleetResult
from repro.sim.placement import MigrationPolicy
from repro.sim.shard import (
    SHM_PREFIX,
    merge_fleet_results,
    partition_lanes,
    run_sharded,
)


class _StubMix:
    demand_per_client = 1.0


class _StubWorkload:
    """The minimal shape the offered-demand footprint reads."""

    def __init__(self, volume: float) -> None:
        self.volume = volume
        self.mix = _StubMix()


def _worker_failing_after_first(spec, lane_lo, lane_hi, result_path):
    """Persists shard 0, then dies — leaves an orphan unless cleaned up."""
    if lane_lo > 0:
        raise RuntimeError("worker crashed mid-sweep")
    FleetResult(
        label="shard-0",
        lane_labels=tuple(f"svc-{i}" for i in range(lane_lo, lane_hi)),
        times=np.array([0.0]),
        matrices={"m": np.zeros((1, lane_hi - lane_lo))},
    ).to_npz(result_path)
    return {}


def _exchange_worker_crashing(spec, lane_lo, lane_hi, result_path, exchange):
    """Shard 0 publishes and waits at the barrier; every other shard
    dies first — the parent must abort the barrier (so shard 0 is not
    stuck until the timeout) and release the shared block."""
    if lane_lo > 0:
        raise RuntimeError("exchange worker crashed before the barrier")
    try:
        exchange.exchange(np.zeros(lane_hi - lane_lo))
    finally:
        exchange.close()
    return {}


def _fault_window_worker_crashing(spec, lane_lo, lane_hi, result_path, exchange):
    """Every worker commits a host failure at the step-1 barrier, then
    shard 1 dies *inside the fault window* — the parent must still
    abort the barrier, unlink the shm segment and remove shard files
    (fault state must not perturb the crash-cleanup path)."""
    from repro.sim.exchange import ShardHostView
    from repro.sim.faults import FaultSchedule, HostFaultEvent
    from repro.sim.hosts import HostMap

    host_map = HostMap.spread(4, 2, 10.0)
    host_map.attach_faults(
        FaultSchedule(host_faults=(HostFaultEvent(0, 1, 50),))
    )
    view = ShardHostView(host_map, lane_lo, lane_hi, exchange)
    workloads = [_StubWorkload(1.0)] * (lane_hi - lane_lo)
    try:
        view.apply_step(0.0, workloads)
        view.apply_step(300.0, workloads)  # the host dies at this barrier
        assert host_map.host_failures == 1
        if lane_lo > 0:
            raise RuntimeError("worker crashed inside the fault window")
        view.apply_step(600.0, workloads)  # blocks until the abort
    finally:
        exchange.close()
    return {}

HOURS = 6.0


def assert_same_fleet(a, b):
    assert a.result.lane_labels == b.result.lane_labels
    assert a.result.schemas == b.result.schemas
    assert a.result.lane_schemas == b.result.lane_schemas
    assert a.result.series_names() == b.result.series_names()
    assert a.result.n_steps > 0
    for name in a.result.series_names():
        np.testing.assert_array_equal(
            a.result.matrix(name), b.result.matrix(name),
            strict=True, err_msg=name,
        )
        assert a.result.lanes_recording(name) == b.result.lanes_recording(name)
    assert a.lane_events == b.lane_events
    assert any(a.lane_events)


class TestPartition:
    def test_even_split(self):
        assert partition_lanes(8, 2) == [range(0, 4), range(4, 8)]

    def test_remainder_goes_to_early_shards(self):
        assert partition_lanes(7, 3) == [
            range(0, 3), range(3, 5), range(5, 7),
        ]

    def test_one_shard_is_everything(self):
        assert partition_lanes(5, 1) == [range(0, 5)]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_lanes(0, 1)
        with pytest.raises(ValueError):
            partition_lanes(4, 0)
        with pytest.raises(ValueError, match="cannot cut"):
            partition_lanes(2, 3)


class TestNpzRoundTrip:
    def build_result(self):
        return FleetResult(
            label="rt",
            lane_labels=("a", "b", "c"),
            times=np.array([0.0, 300.0]),
            matrices={
                "latency_ms": np.array([[1.0, 2.0], [3.0, 4.0]]),
                "cost": np.array([[5.0], [6.0]]),
            },
            schemas=(("latency_ms", "cost"), ("latency_ms",)),
            lane_schemas=(0, 1, 1),
            series_lanes={"latency_ms": (0, 1, 2), "cost": (0,)},
        )

    def assert_round_trips(self, result, tmp_path):
        path = tmp_path / "result.npz"
        result.to_npz(path)
        loaded = FleetResult.from_npz(path)
        assert loaded.label == result.label
        assert loaded.lane_labels == result.lane_labels
        assert loaded.schemas == result.schemas
        assert loaded.lane_schemas == result.lane_schemas
        assert loaded.series_lanes == result.series_lanes
        np.testing.assert_array_equal(loaded.times, result.times, strict=True)
        assert loaded.series_names() == result.series_names()
        for name in result.series_names():
            np.testing.assert_array_equal(
                loaded.matrix(name), result.matrix(name), strict=True
            )
        return loaded

    def test_heterogeneous_round_trip(self, tmp_path):
        # The mismatched columns of latency_ms vs cost survive intact.
        self.assert_round_trips(self.build_result(), tmp_path)

    def test_single_row_round_trip(self, tmp_path):
        result = FleetResult(
            label="one",
            lane_labels=("a", "b"),
            times=np.array([0.0]),
            matrices={"m": np.array([[1.5, 2.5]])},
        )
        loaded = self.assert_round_trips(result, tmp_path)
        series = loaded.lane_series("m", 1)
        assert len(series) == 1
        assert series.values.tolist() == [2.5]
        assert series.integrate() == 0.0  # step-hold of a single sample
        # A later extend keeps appending where the lane left off.
        series.extend(np.array([300.0]), np.array([3.5]))
        assert list(series) == [(0.0, 2.5), (300.0, 3.5)]

    def test_empty_round_trip(self, tmp_path):
        result = FleetResult(
            label="empty",
            lane_labels=("a",),
            times=np.empty(0),
            matrices={"m": np.empty((0, 1))},
            schemas=(("m",),),
            lane_schemas=(0,),
            series_lanes={"m": (0,)},
        )
        loaded = self.assert_round_trips(result, tmp_path)
        series = loaded.lane_series("m", 0)
        assert len(series) == 0
        series.extend(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]

    def test_real_mixed_fleet_round_trip(self, tmp_path):
        study = run_fleet_multiplexing_study(n_lanes=4, hours=2.0, mix="mixed")
        path = tmp_path / "fleet.npz"
        study.result.to_npz(path)
        loaded = FleetResult.from_npz(path)
        assert loaded.schemas == study.result.schemas
        for lane in range(4):
            schema, rows = loaded.lane_block(lane)
            _schema, expected = study.result.lane_block(lane)
            assert schema == _schema
            np.testing.assert_array_equal(rows, expected, strict=True)

    def test_unknown_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        np.savez(
            path,
            meta_json=np.array(json.dumps({"version": 99})),
            times=np.empty(0),
        )
        with pytest.raises(ValueError, match="version"):
            FleetResult.from_npz(path)


class TestMerge:
    def test_merge_homogeneous_parts(self):
        parts = [
            FleetResult(
                label=f"shard-{k}",
                lane_labels=(f"svc-{2 * k}", f"svc-{2 * k + 1}"),
                times=np.array([0.0, 60.0]),
                matrices={"m": np.array([[k, k + 10.0], [k + 1, k + 11.0]])},
            )
            for k in range(2)
        ]
        merged = merge_fleet_results(parts, label="fleet")
        assert merged.lane_labels == ("svc-0", "svc-1", "svc-2", "svc-3")
        assert merged.lanes_recording("m") == (0, 1, 2, 3)
        np.testing.assert_array_equal(
            merged.matrix("m"),
            np.array([[0.0, 10.0, 1.0, 11.0], [1.0, 11.0, 2.0, 12.0]]),
        )

    def test_merge_deduplicates_schemas(self):
        def part(k, schema):
            return FleetResult(
                label=f"shard-{k}",
                lane_labels=(f"svc-{k}",),
                times=np.array([0.0]),
                matrices={name: np.array([[float(k)]]) for name in schema},
                schemas=(schema,),
                lane_schemas=(0,),
                series_lanes={name: (0,) for name in schema},
            )

        merged = merge_fleet_results(
            [part(0, ("a",)), part(1, ("b",)), part(2, ("a",))]
        )
        assert merged.schemas == (("a",), ("b",))
        assert merged.lane_schemas == (0, 1, 0)
        assert merged.lanes_recording("a") == (0, 2)
        assert merged.lanes_recording("b") == (1,)

    def test_merge_rejects_disagreeing_times(self):
        a = FleetResult(
            label="a", lane_labels=("x",), times=np.array([0.0]),
            matrices={"m": np.array([[1.0]])},
        )
        b = FleetResult(
            label="b", lane_labels=("y",), times=np.array([60.0]),
            matrices={"m": np.array([[1.0]])},
        )
        with pytest.raises(ValueError, match="step times"):
            merge_fleet_results([a, b])

    def test_times_mismatch_diagnostic_names_both_parts(self):
        # Mismatched step counts (a shard from a different sweep) must
        # say which parts disagree and by how much — not just "differ".
        a = FleetResult(
            label="shard-a", lane_labels=("svc-0",),
            times=np.array([0.0, 60.0]),
            matrices={"m": np.array([[1.0], [2.0]])},
        )
        b = FleetResult(
            label="shard-b", lane_labels=("svc-1",),
            times=np.array([0.0, 60.0, 120.0]),
            matrices={"m": np.array([[1.0], [2.0], [3.0]])},
        )
        with pytest.raises(ValueError) as excinfo:
            merge_fleet_results([a, b])
        message = str(excinfo.value)
        assert "shard-a" in message and "shard-b" in message
        assert "3" in message and "2" in message

    def test_merge_rejects_out_of_order_shards(self):
        # Column merging trusts part order; a swapped pair would
        # silently misalign every per-lane series, so the numeric lane
        # labels are checked for ascending global order.
        parts = [
            FleetResult(
                label=f"shard-{k}",
                lane_labels=(f"svc-{2 * k}", f"svc-{2 * k + 1}"),
                times=np.array([0.0]),
                matrices={"m": np.array([[float(k), float(k)]])},
            )
            for k in range(2)
        ]
        with pytest.raises(ValueError, match="out of global lane order"):
            merge_fleet_results([parts[1], parts[0]])

    def test_merge_rejects_duplicate_lane_labels(self):
        part = FleetResult(
            label="shard-0", lane_labels=("svc-0",), times=np.array([0.0]),
            matrices={"m": np.array([[1.0]])},
        )
        with pytest.raises(ValueError, match="duplicate lane labels"):
            merge_fleet_results([part, part])

    def test_free_form_labels_skip_the_order_check(self):
        # Hand-built results with non-numeric labels (like the ones in
        # this file) merge in whatever order they are given.
        a = FleetResult(
            label="a", lane_labels=("x",), times=np.array([0.0]),
            matrices={"m": np.array([[1.0]])},
        )
        b = FleetResult(
            label="b", lane_labels=("y",), times=np.array([0.0]),
            matrices={"m": np.array([[2.0]])},
        )
        merged = merge_fleet_results([b, a])
        assert merged.lane_labels == ("y", "x")

    def test_merge_requires_parts(self):
        with pytest.raises(ValueError):
            merge_fleet_results([])


class TestShardedStudy:
    KWARGS = dict(n_lanes=8, hours=HOURS, profiling_slots=8)

    def test_inline_shards_match_single_process(self):
        single = run_fleet_multiplexing_study(**self.KWARGS)
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=0, **self.KWARGS
        )
        assert sharded.shards == 2 and sharded.workers == 0
        assert sharded.learning_runs == single.learning_runs
        assert sharded.tuning_invocations == single.tuning_invocations
        assert sharded.hit_rate == single.hit_rate
        assert sharded.violation_fraction == single.violation_fraction
        assert_same_fleet(single, sharded)

    def test_worker_processes_match_single_process(self):
        # The real spawn path: 2 worker processes, each persisting its
        # shard via to_npz before the parent merges.
        single = run_fleet_multiplexing_study(n_lanes=4, hours=3.0,
                                              profiling_slots=4)
        sharded = run_fleet_multiplexing_study(
            n_lanes=4, hours=3.0, profiling_slots=4, shards=2, workers=2
        )
        assert_same_fleet(single, sharded)

    def test_mixed_fleet_shards_match_single_process(self):
        # Shard 1 of 3 holds lanes (2, 3) — neither family leader —
        # so phantom-leader re-derivation is exercised.
        kwargs = dict(n_lanes=6, hours=4.0, profiling_slots=6, mix="mixed")
        single = run_fleet_multiplexing_study(**kwargs)
        sharded = run_fleet_multiplexing_study(shards=3, workers=0, **kwargs)
        assert sharded.learning_runs == single.learning_runs == 2
        assert_same_fleet(single, sharded)

    def test_legacy_streams_also_shard_invariant(self):
        # Legacy per-sampler seeds are keyed by global lane index too.
        kwargs = dict(
            n_lanes=6, hours=4.0, profiling_slots=6, rng_mode="legacy"
        )
        single = run_fleet_multiplexing_study(**kwargs)
        sharded = run_fleet_multiplexing_study(shards=2, workers=0, **kwargs)
        assert_same_fleet(single, sharded)

    def test_shard_dir_keeps_npz_files(self, tmp_path):
        run_fleet_multiplexing_study(
            n_lanes=4,
            hours=2.0,
            shards=2,
            workers=0,
            shard_dir=str(tmp_path),
        )
        files = sorted(p.name for p in tmp_path.glob("*.npz"))
        assert files == ["shard_000.npz", "shard_001.npz"]
        part = FleetResult.from_npz(tmp_path / "shard_000.npz")
        assert part.n_lanes == 2

    def test_failing_worker_leaves_no_orphan_npz(self, tmp_path):
        # A mid-sweep worker failure used to strand the completed
        # shards' .npz files in a caller-provided shard_dir; the sweep
        # must clean up everything it wrote before re-raising.
        with pytest.raises(RuntimeError, match="crashed mid-sweep"):
            run_sharded(
                _worker_failing_after_first,
                spec=None,
                n_lanes=4,
                shards=2,
                workers=0,
                shard_dir=str(tmp_path),
            )
        assert list(tmp_path.glob("*.npz")) == []

    def test_events_preserve_per_lane_ordering(self):
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=0, **self.KWARGS
        )
        assert len(sharded.lane_events) == self.KWARGS["n_lanes"]
        for log in sharded.lane_events:
            assert len(log) >= 1
            times = [event[0] for event in log]
            assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError, match="shard"):
            run_fleet_multiplexing_study(n_lanes=4, shards=0)
        with pytest.raises(ValueError, match="cannot cut"):
            run_fleet_multiplexing_study(n_lanes=2, hours=1.0, shards=4)

class TestHostCoupledShards:
    """Shared hosts couple lanes *across* shards: every shard worker
    publishes its lanes' per-step demand contributions into one shared
    block, synchronizes at a step barrier, and computes the global
    theft pass locally — so theft, overload and migrations are decided
    against the whole fleet and the merge stays bit-identical.
    """

    # Two hosts at 6 capacity units under the mixed 8-lane fleet are
    # genuinely contended from hour ~7 on (mean theft ~0.19, overload
    # fraction 0.5) — without contention the equality gates below would
    # be vacuous.
    KWARGS = dict(
        n_lanes=8,
        hours=12.0,
        profiling_slots=8,
        mix="mixed",
        n_hosts=2,
        host_capacity_units=6.0,
        placement="first_fit_decreasing",
        seed=3,
    )

    def assert_same_hosts(self, single, sharded):
        assert_same_fleet(single, sharded)
        assert sharded.mean_host_theft == single.mean_host_theft
        assert sharded.peak_host_theft == single.peak_host_theft
        assert (
            sharded.host_overload_fraction == single.host_overload_fraction
        )
        assert sharded.migrations == single.migrations
        assert sharded.violation_fraction == single.violation_fraction
        # Escalated entries are deduplicated across the per-shard
        # family-repository copies, so the fleet-wide count matches.
        assert (
            sharded.interference_escalations
            == single.interference_escalations
        )
        # hit_rate is an equality pin, not approximate: the merge
        # deduplicates per-replica misses on keys a tuning run stored
        # fleet-wide, so the per-shard-denominator artifact is gone.
        assert sharded.hit_rate == single.hit_rate

    def test_thread_shards_match_single_process_under_contention(self):
        single = run_fleet_multiplexing_study(**self.KWARGS)
        assert single.mean_host_theft > 0.0
        assert single.host_overload_fraction > 0.0
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=0, **self.KWARGS
        )
        assert sharded.shards == 2 and sharded.workers == 0
        self.assert_same_hosts(single, sharded)

    def test_uneven_shards_also_match(self):
        # 8 lanes over 3 shards: ranges (0-2, 3-5, 6-7) exercise the
        # slice geometry of the exchange block for unequal slices.
        single = run_fleet_multiplexing_study(**self.KWARGS)
        sharded = run_fleet_multiplexing_study(
            shards=3, workers=0, **self.KWARGS
        )
        self.assert_same_hosts(single, sharded)

    def test_worker_processes_match_single_process(self):
        # The real spawn path: each worker attaches the shared-memory
        # block by name and synchronizes on the manager barrier proxy.
        single = run_fleet_multiplexing_study(**self.KWARGS)
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=2, **self.KWARGS
        )
        self.assert_same_hosts(single, sharded)

    def test_migrations_commit_identically_across_shards(self):
        # Round-robin spreads the heavy lanes badly enough that the
        # rebalancer actually moves one; the move must land on the same
        # host at the same step whether sharded or not.
        kwargs = dict(
            n_lanes=8,
            hours=8.0,
            profiling_slots=8,
            mix="mixed",
            n_hosts=3,
            host_capacity_units=6.0,
            placement="round_robin",
            migration=MigrationPolicy(rebalance_every=4, max_moves=2),
            seed=3,
        )
        single = run_fleet_multiplexing_study(**kwargs)
        assert single.migrations > 0
        sharded = run_fleet_multiplexing_study(shards=2, workers=0, **kwargs)
        self.assert_same_hosts(single, sharded)

    def test_coarser_exchange_cadence_runs_and_merges(self):
        # exchange_every > 1 trades fidelity for fewer barriers; the
        # sweep must still merge cleanly and aggregate host stats.
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=0, exchange_every=3, **self.KWARGS
        )
        assert sharded.result.n_steps > 0
        assert sharded.mean_host_theft >= 0.0
        assert sharded.host_overload_fraction >= 0.0

    def test_exchange_every_requires_shards_and_hosts(self):
        with pytest.raises(ValueError, match="exchange_every"):
            run_fleet_multiplexing_study(
                n_lanes=4, hours=1.0, exchange_every=2
            )
        with pytest.raises(ValueError, match="exchange_every"):
            run_fleet_multiplexing_study(
                n_lanes=4, hours=1.0, shards=2, exchange_every=2
            )

    def test_undersized_pool_rejected(self):
        # 0 < workers < shards would deadlock at the first barrier wait.
        with pytest.raises(ValueError, match="deadlock"):
            run_fleet_multiplexing_study(shards=2, workers=1, **self.KWARGS)
        with pytest.raises(ValueError, match="deadlock"):
            run_sharded(
                _worker_failing_after_first,
                spec=None,
                n_lanes=4,
                shards=2,
                workers=1,
                exchange=ExchangeSpec(),
            )

    def test_crashed_thread_worker_aborts_barrier_and_cleans_up(
        self, tmp_path
    ):
        # Shard 0 is blocked at the barrier when shard 1 dies; the
        # parent must abort the barrier (fast failure, not a timeout)
        # and remove every shard file.
        with pytest.raises(RuntimeError, match="before the barrier"):
            run_sharded(
                _exchange_worker_crashing,
                spec=None,
                n_lanes=4,
                shards=2,
                workers=0,
                shard_dir=str(tmp_path),
                exchange=ExchangeSpec(),
            )
        assert list(tmp_path.glob("*.npz")) == []

    def test_crashed_worker_process_unlinks_shared_memory(self, tmp_path):
        # Same crash through the spawn pool: the parent owns the
        # /dev/shm segment and must unlink it even though the sweep
        # died mid-exchange.
        shm_dir = Path("/dev/shm")
        before = (
            {p.name for p in shm_dir.glob(f"{SHM_PREFIX}-*")}
            if shm_dir.is_dir()
            else set()
        )
        with pytest.raises(RuntimeError, match="before the barrier"):
            run_sharded(
                _exchange_worker_crashing,
                spec=None,
                n_lanes=4,
                shards=2,
                workers=2,
                shard_dir=str(tmp_path),
                exchange=ExchangeSpec(barrier_timeout_seconds=60.0),
            )
        assert list(tmp_path.glob("*.npz")) == []
        if shm_dir.is_dir():
            after = {p.name for p in shm_dir.glob(f"{SHM_PREFIX}-*")}
            assert after <= before


class TestFaultedShards(TestHostCoupledShards):
    """Fault injection across shard boundaries: the same schedule must
    produce bit-identical runs sharded or not, commits must land only
    at exchange barriers, and a worker crash inside a fault window must
    not change the cleanup guarantees.
    """

    #: The host-coupled fleet with two scripted host deaths: host 0
    #: early (its tenants evacuate under contention), host 1 later.
    FAULTED = dict(
        TestHostCoupledShards.KWARGS,
        faults="host:0@25+18,host:1@90+12,blackout=300",
    )

    def test_faulted_shards_match_single_process(self):
        single = run_fleet_multiplexing_study(**self.FAULTED)
        # The honesty guards: hosts really died, tenants really moved
        # (or degraded), or the equality below proves nothing.
        assert single.host_failures == 2
        assert single.host_recoveries == 2
        assert single.evacuations + single.unplaced_evacuations > 0
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=0, **self.FAULTED
        )
        self.assert_same_hosts(single, sharded)
        assert sharded.host_failures == single.host_failures
        assert sharded.host_recoveries == single.host_recoveries
        assert sharded.evacuations == single.evacuations
        assert (
            sharded.unplaced_evacuations == single.unplaced_evacuations
        )

    def test_faulted_worker_processes_match_single_process(self):
        single = run_fleet_multiplexing_study(**self.FAULTED)
        sharded = run_fleet_multiplexing_study(
            shards=2, workers=2, **self.FAULTED
        )
        self.assert_same_hosts(single, sharded)
        assert sharded.host_failures == single.host_failures == 2
        assert sharded.evacuations == single.evacuations

    def test_profiler_outage_also_shard_invariant(self):
        # Shard invariance only holds for an uncontended queue (each
        # shard owns its profiling environment — a background
        # re-signature stream would fill all eight slots in the single
        # run but only four per shard queue, shard-dependent
        # contention).  Hourly adapt grants are lane-local, and the 5 s
        # step puts the window start (step 1441 = t 7205) mid-flight of
        # the 10 s signature grant issued at t 7200, so every lane's
        # grant really is revoked — identically on both paths.
        kwargs = dict(
            n_lanes=8,
            hours=3.0,
            step_seconds=5.0,
            profiling_slots=8,
            mix="mixed",
            faults="profiler@1441+360,retries=2,backoff=900",
        )
        single = run_fleet_multiplexing_study(**kwargs)
        assert single.revoked_profiles > 0  # the outage actually bit
        sharded = run_fleet_multiplexing_study(shards=2, workers=0, **kwargs)
        assert_same_fleet(single, sharded)
        assert sharded.revoked_profiles == single.revoked_profiles
        assert sharded.profiling_retries == single.profiling_retries
        assert sharded.hit_rate == single.hit_rate
        assert sharded.violation_fraction == single.violation_fraction

    def test_commits_land_only_at_exchange_barriers(self):
        # The property behind the coarser-cadence regime: with
        # exchange_every=3 the global demand vector is only coherent at
        # steps 0, 3, 6, ... — so fault events *and* migrations, both of
        # which change placement, must defer to those barriers (pinned
        # here on a directly driven single-shard view; the
        # SYN-host-outage gate scenario exercises the full sweep).
        from repro.sim.exchange import ShardHostView, make_thread_exchange
        from repro.sim.hosts import HostMap

        host_map = HostMap.spread(
            4, 2, 3.0,
            migration=MigrationPolicy(rebalance_every=5, max_moves=2),
        )
        host_map.attach_faults(
            FaultSchedule(
                host_faults=(
                    HostFaultEvent(0, 25, 7),   # off the barrier grid
                    HostFaultEvent(1, 50, 4),
                )
            )
        )
        handle = make_thread_exchange(
            4, [range(0, 4)], ExchangeSpec(exchange_every=3)
        )[0]
        view = ShardHostView(host_map, 0, 4, handle)
        workloads = [_StubWorkload(v) for v in (2.0, 1.0, 2.0, 1.0)]
        for step in range(90):
            view.apply_step(step * 300.0, workloads)
        # Every event committed, one barrier after its scripted step.
        assert host_map.fault_commit_steps == [27, 33, 51, 54]
        assert host_map.host_failures == 2
        assert all(s % 3 == 0 for s in host_map.migration_commit_steps)

    def test_crash_inside_a_fault_window_still_cleans_up(self, tmp_path):
        # The overlap case: a worker process dies while a host is down.
        # The parent's abort-and-unlink path must be indifferent to the
        # fault state — no orphan npz, no leaked /dev/shm segment.
        shm_dir = Path("/dev/shm")
        before = (
            {p.name for p in shm_dir.glob(f"{SHM_PREFIX}-*")}
            if shm_dir.is_dir()
            else set()
        )
        with pytest.raises(RuntimeError, match="inside the fault window"):
            run_sharded(
                _fault_window_worker_crashing,
                spec=None,
                n_lanes=4,
                shards=2,
                workers=2,
                shard_dir=str(tmp_path),
                exchange=ExchangeSpec(barrier_timeout_seconds=60.0),
            )
        assert list(tmp_path.glob("*.npz")) == []
        if shm_dir.is_dir():
            after = {p.name for p in shm_dir.glob(f"{SHM_PREFIX}-*")}
            assert after <= before
