"""Unit tests for the interference substrate."""

import pytest

from repro.interference.injector import InterferenceInjector, InterferenceSchedule
from repro.interference.microbenchmark import Microbenchmark
from repro.sim.clock import HOUR


class TestMicrobenchmark:
    def test_paper_levels_valid(self):
        # The paper injects 10% and 20% CPU/memory hogs.
        for fraction in (0.10, 0.20):
            bench = Microbenchmark(cpu_fraction=fraction)
            assert bench.capacity_theft >= fraction

    def test_cache_pollution_adds_to_theft(self):
        small = Microbenchmark(cpu_fraction=0.1, working_set_mb=8.0)
        big = Microbenchmark(cpu_fraction=0.1, working_set_mb=128.0)
        assert big.capacity_theft > small.capacity_theft

    def test_zero_cpu_hog_steals_nothing(self):
        assert Microbenchmark(cpu_fraction=0.0).capacity_theft == 0.0

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Microbenchmark(cpu_fraction=1.0)

    def test_negative_working_set_rejected(self):
        with pytest.raises(ValueError):
            Microbenchmark(cpu_fraction=0.1, working_set_mb=-1.0)


class TestSchedule:
    def test_none_schedule(self):
        schedule = InterferenceSchedule.none()
        assert schedule.active_at(0.0) is None
        assert schedule.active_at(1e6) is None

    def test_piecewise_lookup(self):
        bench = Microbenchmark(cpu_fraction=0.1)
        schedule = InterferenceSchedule(
            segments=((0.0, None), (100.0, bench), (200.0, None))
        )
        assert schedule.active_at(50.0) is None
        assert schedule.active_at(150.0) is bench
        assert schedule.active_at(250.0) is None

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            InterferenceSchedule(segments=((1.0, None),))

    def test_must_be_sorted(self):
        bench = Microbenchmark(cpu_fraction=0.1)
        with pytest.raises(ValueError):
            InterferenceSchedule(segments=((0.0, None), (50.0, bench), (20.0, None)))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            InterferenceSchedule.none().active_at(-1.0)

    def test_alternating_10_20_levels(self):
        schedule = InterferenceSchedule.alternating_10_20(
            total_seconds=24 * HOUR, segment_hours=6.0
        )
        fractions = {
            schedule.active_at(h * HOUR).cpu_fraction for h in range(0, 24, 6)
        }
        assert fractions <= {0.10, 0.20}

    def test_alternating_deterministic(self):
        a = InterferenceSchedule.alternating_10_20(24 * HOUR, seed=5)
        b = InterferenceSchedule.alternating_10_20(24 * HOUR, seed=5)
        assert [
            (s, getattr(m, "cpu_fraction", None)) for s, m in a.segments
        ] == [(s, getattr(m, "cpu_fraction", None)) for s, m in b.segments]

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            InterferenceSchedule.alternating_10_20(0.0)


class TestInjector:
    def test_injects_capacity_theft(self):
        bench = Microbenchmark(cpu_fraction=0.2)
        schedule = InterferenceSchedule(segments=((0.0, bench),))
        injector = InterferenceInjector(schedule)
        assert injector.interference_at(10.0) == pytest.approx(bench.capacity_theft)

    def test_idle_tenant_means_zero(self):
        injector = InterferenceInjector(InterferenceSchedule.none())
        assert injector.interference_at(10.0) == 0.0
