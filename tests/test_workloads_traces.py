"""Unit tests for the synthetic traces."""

import numpy as np
import pytest

from repro.sim.clock import HOUR
from repro.workloads.request_mix import CASSANDRA_UPDATE_HEAVY
from repro.workloads.traces import (
    DAYS_PER_WEEK,
    HOTMAIL_LEVELS,
    HOTMAIL_SURGE_LOAD,
    HOURS_PER_DAY,
    MESSENGER_LEVELS,
    DaySchedule,
    LoadTrace,
    synthetic_hotmail_trace,
    synthetic_messenger_trace,
)

MIX = CASSANDRA_UPDATE_HEAVY


class TestDaySchedule:
    def test_level_indices_cover_day(self):
        schedule = DaySchedule(segments=((0, 0), (6, 1), (20, 0)))
        levels = schedule.level_indices()
        assert levels.shape == (24,)
        assert list(levels[:6]) == [0] * 6
        assert list(levels[6:20]) == [1] * 14
        assert list(levels[20:]) == [0] * 4

    def test_must_start_at_midnight(self):
        with pytest.raises(ValueError):
            DaySchedule(segments=((1, 0),))

    def test_starts_must_increase(self):
        with pytest.raises(ValueError):
            DaySchedule(segments=((0, 0), (5, 1), (3, 2)))

    def test_shifted_moves_boundary(self):
        schedule = DaySchedule(segments=((0, 0), (6, 1), (20, 0)))
        shifted = schedule.shifted({1: 2})
        assert shifted.segments[1] == (8, 1)

    def test_shifted_clamps_to_increasing(self):
        schedule = DaySchedule(segments=((0, 0), (6, 1), (7, 2)))
        shifted = schedule.shifted({1: 5})
        starts = [s for s, _ in shifted.segments]
        assert starts == sorted(set(starts))

    def test_shift_of_segment_zero_rejected(self):
        schedule = DaySchedule(segments=((0, 0), (6, 1)))
        with pytest.raises(ValueError):
            schedule.shifted({0: 1})


class TestLoadTrace:
    def test_week_length(self):
        trace = synthetic_messenger_trace(MIX)
        assert trace.hours == DAYS_PER_WEEK * HOURS_PER_DAY

    def test_load_at_is_piecewise_constant(self):
        trace = synthetic_messenger_trace(MIX)
        assert trace.load_at(0.0) == trace.load_at(HOUR - 1.0)

    def test_load_at_beyond_trace_rejected(self):
        trace = synthetic_messenger_trace(MIX)
        with pytest.raises(ValueError):
            trace.load_at(trace.duration_seconds + 1.0)

    def test_negative_time_rejected(self):
        trace = synthetic_messenger_trace(MIX)
        with pytest.raises(ValueError):
            trace.load_at(-1.0)

    def test_workload_at_scales_by_peak_clients(self):
        trace = synthetic_messenger_trace(MIX, peak_clients=500.0)
        workload = trace.workload_at(0.0)
        assert workload.volume == pytest.approx(trace.load_at(0.0) * 500.0)

    def test_day_slice_shape(self):
        trace = synthetic_messenger_trace(MIX)
        assert trace.day_slice(0).shape == (24,)

    def test_day_slice_out_of_range(self):
        trace = synthetic_messenger_trace(MIX)
        with pytest.raises(ValueError):
            trace.day_slice(7)

    def test_hourly_workloads(self):
        trace = synthetic_messenger_trace(MIX)
        workloads = trace.hourly_workloads(0)
        assert len(workloads) == 24

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace(name="bad", hourly_load=np.array([-0.1]), mix=MIX)


class TestMessengerTrace:
    def test_deterministic_given_seed(self):
        a = synthetic_messenger_trace(MIX, seed=3)
        b = synthetic_messenger_trace(MIX, seed=3)
        assert np.allclose(a.hourly_load, b.hourly_load)

    def test_different_seeds_differ(self):
        a = synthetic_messenger_trace(MIX, seed=3)
        b = synthetic_messenger_trace(MIX, seed=4)
        assert not np.allclose(a.hourly_load, b.hourly_load)

    def test_normalized_to_peak_one(self):
        trace = synthetic_messenger_trace(MIX)
        assert trace.hourly_load.max() <= 1.0

    def test_learning_day_has_four_levels(self):
        # Day 0 must expose all four plateaus so learning sees them.
        day0 = synthetic_messenger_trace(MIX, jitter_sd=0.0).day_slice(0)
        assert set(np.round(day0, 2)) == set(np.round(MESSENGER_LEVELS, 2))

    def test_peak_hour_is_rare_on_learning_day(self):
        day0 = synthetic_messenger_trace(MIX, jitter_sd=0.0).day_slice(0)
        assert np.sum(day0 == 1.0) == 1

    def test_days_differ_in_phase(self):
        # The transition-based generator must not produce identical days
        # (otherwise Autopilot would be optimal).
        trace = synthetic_messenger_trace(MIX)
        day1 = trace.day_slice(1)
        day2 = trace.day_slice(2)
        assert not np.allclose(day1, day2, atol=0.05)


class TestHotmailTrace:
    def test_three_levels_on_learning_day(self):
        day0 = synthetic_hotmail_trace(MIX, jitter_sd=0.0).day_slice(0)
        assert set(np.round(day0, 2)) == set(np.round(HOTMAIL_LEVELS, 2))

    def test_surge_is_present_on_day_four(self):
        trace = synthetic_hotmail_trace(MIX)
        day3 = trace.day_slice(3)
        assert np.sum(day3 == HOTMAIL_SURGE_LOAD) == 3

    def test_surge_exceeds_learned_levels(self):
        assert HOTMAIL_SURGE_LOAD > HOTMAIL_LEVELS.max() * 1.2

    def test_no_surge_on_learning_day(self):
        trace = synthetic_hotmail_trace(MIX)
        assert trace.day_slice(0).max() < HOTMAIL_SURGE_LOAD

    def test_anomaly_on_learning_day_rejected(self):
        with pytest.raises(ValueError):
            synthetic_hotmail_trace(MIX, anomaly_day=0)

    def test_anomaly_day_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            synthetic_hotmail_trace(MIX, anomaly_day=9)

    def test_custom_anomaly_hours(self):
        trace = synthetic_hotmail_trace(MIX, anomaly_hours=(5,))
        assert np.sum(trace.day_slice(3) == HOTMAIL_SURGE_LOAD) == 1
