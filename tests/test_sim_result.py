"""Unit tests for time-series recording."""

import numpy as np
import pytest

from repro.sim.result import SimulationResult, TimeSeries


class TestTimeSeries:
    def test_record_and_len(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_out_of_order_rejected(self):
        series = TimeSeries("x")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("x")
        series.record(5.0, 1.0)
        series.record(5.0, 2.0)
        assert len(series) == 2

    def test_iteration_yields_pairs(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(2.0, 3.0)
        assert list(series) == [(0.0, 1.0), (2.0, 3.0)]

    def test_times_and_values_arrays(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 4.0)
        assert np.allclose(series.times, [0.0, 1.0])
        assert np.allclose(series.values, [1.0, 4.0])

    def test_value_at_step_hold(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0
        assert series.value_at(100.0) == 2.0

    def test_value_at_before_first_sample_fails(self):
        series = TimeSeries("x")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.value_at(4.0)

    def test_value_at_empty_fails(self):
        with pytest.raises(ValueError):
            TimeSeries("x").value_at(0.0)

    def test_window_half_open(self):
        series = TimeSeries("x")
        for t in range(5):
            series.record(float(t), float(t))
        windowed = series.window(1.0, 3.0)
        assert list(windowed) == [(1.0, 1.0), (2.0, 2.0)]

    def test_window_bad_bounds(self):
        with pytest.raises(ValueError):
            TimeSeries("x").window(3.0, 1.0)

    def test_mean_and_max(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert series.mean() == 2.0
        assert series.max() == 3.0

    def test_mean_of_empty_fails(self):
        with pytest.raises(ValueError):
            TimeSeries("x").mean()

    def test_fraction_above(self):
        series = TimeSeries("x")
        for value in (1.0, 2.0, 3.0, 4.0):
            series.record(0.0, value)
        assert series.fraction_above(2.0) == 0.5

    def test_fraction_below(self):
        series = TimeSeries("x")
        for value in (1.0, 2.0, 3.0, 4.0):
            series.record(0.0, value)
        assert series.fraction_below(2.0) == 0.25

    def test_integrate_left_riemann(self):
        series = TimeSeries("x")
        series.record(0.0, 2.0)
        series.record(10.0, 4.0)
        series.record(20.0, 0.0)
        # 2*10 + 4*10; the final sample holds no interval.
        assert series.integrate() == pytest.approx(60.0)

    def test_integrate_single_sample_is_zero(self):
        series = TimeSeries("x")
        series.record(0.0, 5.0)
        assert series.integrate() == 0.0


class TestSimulationResult:
    def test_record_creates_series(self):
        result = SimulationResult(label="run")
        result.record("latency_ms", 0.0, 10.0)
        assert "latency_ms" in result.series
        assert len(result.series["latency_ms"]) == 1

    def test_series_named_is_idempotent(self):
        result = SimulationResult(label="run")
        a = result.series_named("x")
        b = result.series_named("x")
        assert a is b

    def test_events_matching(self):
        result = SimulationResult(label="run")
        result.log_event(1.0, "cache miss at hour 3")
        result.log_event(2.0, "resize 2 -> 4")
        assert result.events_matching("miss") == [(1.0, "cache miss at hour 3")]

    def test_merged_scalars(self):
        result = SimulationResult(label="run")
        result.scalars["a"] = 1.0
        merged = result.merged_scalars([("b", 2.0)])
        assert merged == {"a": 1.0, "b": 2.0}


class TestTimeSeriesBatchEdges:
    """extend/from_arrays edge cases the shard merge hits: empty
    batches, single-row lanes, and matrix-column slips."""

    def test_from_arrays_empty(self):
        series = TimeSeries.from_arrays("e", np.empty(0), np.empty(0))
        assert len(series) == 0
        # An empty series accepts a later batch as if freshly created.
        series.extend(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert list(series) == [(1.0, 3.0), (2.0, 4.0)]

    def test_from_arrays_single_row(self):
        series = TimeSeries.from_arrays("s", np.array([5.0]), np.array([7.0]))
        assert list(series) == [(5.0, 7.0)]
        assert series.integrate() == 0.0
        assert series.value_at(9.0) == 7.0

    def test_extend_empty_batch_is_a_noop(self):
        series = TimeSeries.from_arrays("n", np.array([1.0]), np.array([2.0]))
        series.extend(np.empty(0), np.empty(0))
        assert list(series) == [(1.0, 2.0)]

    def test_extend_single_row_batches_stay_ordered(self):
        series = TimeSeries("o")
        for t in (1.0, 2.0, 3.0):
            series.extend(np.array([t]), np.array([t * 10]))
        assert series.times.tolist() == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="out-of-order"):
            series.extend(np.array([0.5]), np.array([0.0]))

    def test_extend_rejects_matrix_columns(self):
        # A (n, 1) column sliced off a fleet matrix must be diagnosed
        # as a dimensionality error, not a bogus length mismatch.
        series = TimeSeries("m")
        with pytest.raises(ValueError, match="1-D"):
            series.extend(np.ones((2, 1)), np.ones((2, 1)))

    def test_extend_rejects_length_mismatch(self):
        series = TimeSeries("l")
        with pytest.raises(ValueError, match="shapes differ"):
            series.extend(np.array([1.0, 2.0]), np.array([3.0]))

    def test_integer_arrays_are_cast(self):
        series = TimeSeries.from_arrays("i", np.array([1, 2]), np.array([3, 4]))
        assert series.times.dtype == float
        assert list(series) == [(1.0, 3.0), (2.0, 4.0)]
